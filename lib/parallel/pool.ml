(* Reusable domain pool for the C-BMF hot paths.

   Determinism contract: every parallel entry point is chunk-order- and
   domain-count-invariant.  [map]/[map_reduce] store per-index results in
   a pre-allocated slot array and reduce them sequentially in index
   order, so for any pool size and any chunking the result is
   bit-identical to the sequential fold.  [parallel_for] requires the
   body to write only index-owned locations; under that contract the
   output is bit-identical to the sequential loop.

   Pool size comes from [CBMF_DOMAINS] when set, otherwise
   [Domain.recommended_domain_count ()].  A pool of size 1 (and any call
   issued from inside a pool task — nested parallelism) runs strictly
   sequentially on the calling domain, with no queueing. *)

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  job_done : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
  submit : Mutex.t; (* one job in flight at a time *)
}

(* True while the current domain is executing a pool task: nested
   parallel calls fall back to the sequential path instead of
   deadlocking on the shared queue. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let max_domains = 64

let clamp_size n = Stdlib.max 1 (Stdlib.min max_domains n)

let env_domains () =
  match Sys.getenv_opt "CBMF_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> clamp_size n
      | _ -> clamp_size (Domain.recommended_domain_count ()))
  | None -> clamp_size (Domain.recommended_domain_count ())

let worker_loop pool () =
  Domain.DLS.set in_task true;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.work_ready pool.mutex
    done;
    match Queue.take_opt pool.queue with
    | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        loop ()
    | None ->
        (* stopped and drained *)
        Mutex.unlock pool.mutex
  in
  loop ()

let create n =
  let size = clamp_size n in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      job_done = Condition.create ();
      stopped = false;
      workers = [||];
      submit = Mutex.create ();
    }
  in
  if size > 1 then
    pool.workers <-
      Array.init (size - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let size pool = pool.size

(* Idempotent: a second (or concurrent) call finds [stopped] already
   set and returns immediately — the first caller owns the join.  This
   makes the [at_exit] guard below safe even when the user already shut
   the pool down explicitly. *)
let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    let workers = pool.workers in
    pool.workers <- [||];
    Array.iter Domain.join workers
  end

(* Run [tasks] to completion; re-raises the lowest-indexed exception
   (deterministic regardless of execution order) with its original
   backtrace.  The calling domain participates in draining the
   queue. *)
let exec pool (tasks : (unit -> unit) array) =
  let nt = Array.length tasks in
  if nt = 0 then ()
  else if pool.size <= 1 || nt = 1 || Domain.DLS.get in_task then
    Array.iter (fun f -> f ()) tasks
  else begin
    Mutex.lock pool.submit;
    let remaining = Atomic.make nt in
    let errors = Array.make nt None in
    let wrap i f () =
      (try f ()
       with e ->
         (* Capture the backtrace where the worker raised, so the
            re-raise on the calling domain preserves the real origin. *)
         errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock pool.mutex;
        Condition.broadcast pool.job_done;
        Mutex.unlock pool.mutex
      end
    in
    Mutex.lock pool.mutex;
    Array.iteri (fun i f -> Queue.add (wrap i f) pool.queue) tasks;
    Condition.broadcast pool.work_ready;
    (* Main domain helps drain, then waits for in-flight tasks. *)
    let rec drain () =
      if Atomic.get remaining > 0 then
        match Queue.take_opt pool.queue with
        | Some task ->
            Mutex.unlock pool.mutex;
            Domain.DLS.set in_task true;
            task ();
            Domain.DLS.set in_task false;
            Mutex.lock pool.mutex;
            drain ()
        | None ->
            if Atomic.get remaining > 0 then
              Condition.wait pool.job_done pool.mutex;
            drain ()
    in
    drain ();
    Mutex.unlock pool.mutex;
    Mutex.unlock pool.submit;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let default_chunk pool n =
  (* Aim for a few chunks per domain so stragglers balance, while
     keeping per-chunk overhead negligible. *)
  Stdlib.max 1 (n / (4 * pool.size))

(* Chunk [0, n) into contiguous ranges of (at most) [chunk]. *)
let chunk_ranges ~chunk n =
  let c = Stdlib.max 1 chunk in
  let n_chunks = (n + c - 1) / c in
  Array.init n_chunks (fun ci ->
      let lo = ci * c in
      (lo, Stdlib.min n (lo + c)))

let parallel_for ?chunk pool ~n f =
  if n > 0 then begin
    let chunk = match chunk with Some c -> c | None -> default_chunk pool n in
    let tasks =
      Array.map
        (fun (lo, hi) () ->
          for i = lo to hi - 1 do
            f i
          done)
        (chunk_ranges ~chunk n)
    in
    exec pool tasks
  end

let map ?chunk pool ~n f =
  let slots = Array.make n None in
  parallel_for ?chunk pool ~n (fun i -> slots.(i) <- Some (f i));
  Array.map (function Some x -> x | None -> assert false) slots

let map_reduce ?chunk pool ~n ~map:map_f ~init ~reduce =
  (* Mapped in parallel, reduced sequentially in index order: the
     result is bit-identical to the sequential fold for any pool size
     and chunking, even for non-associative float reductions. *)
  Array.fold_left reduce init (map ?chunk pool ~n map_f)

let map_array ?chunk pool f xs =
  map ?chunk pool ~n:(Array.length xs) (fun i -> f xs.(i))

(* --- Global default pool ------------------------------------------- *)

let default_pool : t option ref = ref None

let default_mutex = Mutex.create ()

(* Join the default pool's domains at process exit: a fault that
   unwinds past the pool's users (or a plain exit mid-pipeline) must
   not leak live domains.  [shutdown] is idempotent, so this is safe
   when the pool was already shut down explicitly.  Registered once,
   under [default_mutex]. *)
let at_exit_registered = ref false

let register_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () ->
        match !default_pool with Some p -> shutdown p | None -> ())
  end

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create (env_domains ()) in
        default_pool := Some p;
        register_at_exit ();
        p
  in
  Mutex.unlock default_mutex;
  pool

(* Resize the shared default pool (bench and the determinism tests use
   this to compare domain counts within one process). *)
let set_default_size n =
  Mutex.lock default_mutex;
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := Some (create n);
  register_at_exit ();
  Mutex.unlock default_mutex
