(** Per-worker float scratch arenas.

    An arena caches named buffers per pool slot ({!Pool.slot}), so pool
    tasks reuse scratch across tasks and jobs instead of allocating per
    task.  No locking: the pool never runs two domains on one slot at a
    time, and each (slot, id) buffer belongs to exactly one slot.

    Buffers are returned with unspecified contents ({!grab}) — callers
    must fully overwrite the region they use — or zeroed
    ({!grab_zeroed}) for accumulation targets.  Returned arrays have
    {e exactly} the requested length (reallocated on size change,
    reused when stable). *)

type id = private int

val fresh_id : unit -> id
(** Globally unique buffer name.  Allocate one per distinct scratch
    role at module initialization; uniqueness across subsystems means a
    nested task can never clobber its parent's scratch by accident. *)

type t

val create : unit -> t
(** A new arena with an empty cache for every slot. *)

val grab : t -> id -> int -> float array
(** [grab a id len]: this slot's buffer for [id], of exactly [len]
    elements, contents unspecified. *)

val grab_zeroed : t -> id -> int -> float array
(** {!grab}, then fill with 0. *)
