(** Chunk-size and fan-out heuristics for the domain pool.

    Owns every scheduling constant: the [CBMF_CHUNK] override, the
    pool's index-range chunk heuristic, the GEMM fan-out threshold
    (both auto-calibrated from a one-shot startup microbenchmark), and
    the serving engine's fixed batch chunk.  Self-contained — [Pool]
    depends on this module, never the reverse. *)

val max_domains : int
(** Hard upper bound on pool size (and arena slot count). *)

val clamp_domains : int -> int
(** Clamp a requested domain count into [1, max_domains]. *)

val recommended_domains : unit -> int
(** [CBMF_DOMAINS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]; always clamped. *)

val sequential_recommended : unit -> bool
(** True when [recommended_domains () = 1] — e.g. a 1-core container —
    meaning every parallel entry point should run sequentially. *)

type calibration = { claim_ns : float; wakeup_ns : float }
(** Measured cost of one atomic chunk claim and one cross-domain
    condvar wakeup round-trip, in nanoseconds (clamped to sane
    ranges). *)

val calibrated : unit -> calibration
(** Force the lazy one-shot microbenchmark and return its result.
    Never called on purely sequential runs unless forced explicitly. *)

val chunk : ?cost_hint_ns:float -> size:int -> n:int -> unit -> int
(** Chunk size for a pool fan-out over [n] items on [size] domains.
    [CBMF_CHUNK] overrides everything.  Otherwise aims for ~8 chunks
    per domain while keeping the per-chunk claim cost under ~2% of the
    chunk's work ([cost_hint_ns] = rough per-item cost, default
    100 ns).  Bit-neutral: affects scheduling only, never results. *)

val fanout_worthwhile : size:int -> work_ns:float -> bool
(** Whether a job with roughly [work_ns] nanoseconds of sequential
    work is worth waking a [size]-domain pool for.  Always false at
    [size <= 1]. *)

val gemm_fanout : size:int -> flops:float -> bool
(** [fanout_worthwhile] with work estimated at ~1 ns per multiply-add
    of blocked kernel code.  Bit-neutral: the panel-parallel kernels
    are arithmetic-identical to their sequential forms, so this
    threshold affects performance only. *)

val default_batch_chunk : int

val batch_chunk : unit -> int
(** Serving-engine batch chunk: [CBMF_CHUNK] or 64.  Bit-affecting
    (chunk boundaries decide which points share a state bucket), hence
    a pure function of the environment — never of pool size or
    calibration — so results are bit-identical at any
    [CBMF_DOMAINS]. *)

val default_batch_window_us : int

val batch_window_us : unit -> int
(** Serving-tier dynamic-batching window in microseconds:
    [CBMF_BATCH_WINDOW_US] if set to a non-negative integer, 200
    otherwise.  How long the batcher lets the first queued predict
    request age before flushing, so concurrent connections coalesce;
    [0] disables batching (strict per-request serving).  Bit-neutral:
    merged and per-request serving are bit-identical per point. *)

val batch_max : unit -> int
(** Cap on the points of one merged engine call:
    [CBMF_BATCH_MAX] if set to a positive integer, [4 * batch_chunk ()]
    otherwise.  Bit-neutral. *)
