(** Reusable domain pool for the C-BMF hot paths.

    {b Determinism contract.}  Every parallel entry point is
    chunk-order- and domain-count-invariant:

    - {!map} and {!map_reduce} store per-index results in a
      pre-allocated slot array and reduce them sequentially in index
      order, so for any pool size and any chunking the result is
      bit-identical to the sequential fold — even for non-associative
      float reductions.
    - {!parallel_for} requires the body to write only index-owned
      locations; under that contract the output is bit-identical to the
      sequential loop.

    {b Scheduling.}  One job at a time: a single chunk closure plus an
    atomic cursor over the chunk range.  Participating domains claim
    chunks by fetch-and-add — no per-chunk closure allocation, no lock
    contention, no per-chunk condvar traffic.  Workers park on a
    mutex/condvar gate between jobs; the submitter bumps an epoch and
    broadcasts once per job.  Chunk sizes default to {!Tune.chunk}
    ([CBMF_CHUNK] override, auto-calibrated heuristic otherwise).

    Pool size comes from the [CBMF_DOMAINS] environment variable when
    set, otherwise [Domain.recommended_domain_count ()].  A pool of
    size 1 — and any call issued from inside a pool task (nested
    parallelism) — runs strictly sequentially on the calling domain,
    with no gate traffic.

    Worker internals (the job record, the in-task domain-local flag,
    the exception slots) are private to the implementation; exceptions
    raised by tasks are re-raised on the calling domain with their
    original backtraces, lowest chunk index first. *)

type t
(** A pool of worker domains.  One job (one {!parallel_for}/{!map}
    call) is in flight at a time; concurrent submissions serialize. *)

val create : int -> t
(** [create n] spawns a pool of [n] domains (clamped to [1, 64]); the
    calling domain participates in draining work, so [n - 1] new
    domains are spawned.  A pool of size 1 spawns nothing. *)

val size : t -> int

val shutdown : t -> unit
(** Stop the workers and join them.  Idempotent: a second (or
    concurrent) call returns immediately; the first caller owns the
    join.  Safe concurrently with an in-flight job: mid-job workers
    finish their claimed chunks before exiting, and the pool remains
    usable afterwards (the submitting domain drains every chunk
    itself). *)

val env_domains : unit -> int
(** The pool size the environment requests: [CBMF_DOMAINS] when set to
    a positive integer, otherwise [Domain.recommended_domain_count ()],
    clamped to [1, 64].  Alias for {!Tune.recommended_domains}. *)

val slot : unit -> int
(** Stable scratch-arena index for the current domain: [0] on the
    submitting domain, [1 .. size-1] on workers (always
    [< Tune.max_domains]).  Nested sequential-fallback calls run on the
    same domain and see the same slot, so per-slot scratch is never
    shared between two concurrently running domains. *)

val in_parallel : unit -> bool
(** True on a domain currently executing a pool task.  Parallel entry
    points already fall back to sequential when nested; this lets
    callers skip the setup work of a parallel path (operand packing,
    arena grabs) before even submitting. *)

val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f 0 … f (n-1)] across the pool in
    contiguous chunks of size [chunk] (default: {!Tune.chunk}).  [f]
    must write only locations owned by its index. *)

val map : ?chunk:int -> t -> n:int -> (int -> 'a) -> 'a array
(** [map pool ~n f] is [[| f 0; …; f (n-1) |]], computed in parallel. *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array

val map_reduce :
  ?chunk:int ->
  t ->
  n:int ->
  map:(int -> 'a) ->
  init:'b ->
  reduce:('b -> 'a -> 'b) ->
  'b
(** Mapped in parallel, reduced sequentially in index order — the
    result is bit-identical to the sequential fold for any pool size
    and chunking. *)

(** {1 Shared default pool} *)

val default : unit -> t
(** The process-wide pool, created on first use with {!env_domains}
    domains.  Its workers are joined at process exit. *)

val set_default_size : int -> unit
(** Shut down the current default pool (if any) and replace it with a
    fresh pool of the given size — bench and the determinism tests use
    this to compare domain counts within one process. *)
