(** Acquisition policies: which (state, x) to simulate next.

    Scores every candidate of a round by predictive posterior variance
    under the current {!Update.t} — the classic uncertainty-sampling
    rule: the sample the model is least sure about buys the most
    posterior contraction.  The variance grid is pool-fanned over all
    (state, candidate) cells via {!Cbmf_parallel.Pool.map}, and since
    scoring only reads the cached factorization the result is
    bit-identical at any domain count. *)

open Cbmf_linalg

type policy =
  | Variance  (** per state, argmax predictive variance *)
  | Cost_weighted
      (** argmax variance / cost(state) — prefers information per
          simulation second when states price differently *)
  | Round_robin
      (** model-blind rotating pick, identical for every state — the
          iid-sampling control with exactly the same budget
          accounting *)

val policy_name : policy -> string

val policy_of_string : string -> policy
(** Inverse of {!policy_name}; raises [Invalid_argument]. *)

val variances : Update.t -> rows:Vec.t array -> float array array
(** [variances upd ~rows] is the K×n predictive-variance grid over
    candidate basis rows, computed in parallel. *)

val select :
  Update.t ->
  policy:policy ->
  round:int ->
  cost:(int -> float) ->
  rows:Vec.t array ->
  int array * float array
(** [(choice, score)]: per state, the winning candidate index and its
    score (0 for [Round_robin], which never scores).  Ties break
    toward the lowest candidate index, deterministically.  Note that
    within one state cost is a constant, so [Variance] and
    [Cost_weighted] coincide here — the per-state form exists to keep
    the EM-facing dataset rectangular; {!select_top} is where cost
    weighting differentiates. *)

val select_top :
  Update.t ->
  policy:policy ->
  round:int ->
  cost:(int -> float) ->
  rows:Vec.t array ->
  n:int ->
  (int * int) array
(** The [n] best (state, candidate) cells of the whole grid, ranked by
    score — cost-weighting genuinely reorders across states here
    (cheap states win more slots).  The resulting acquisition is
    ragged; {!Update.append} absorbs it, the rectangular
    {!Stream}/EM path cannot.  [Round_robin] cycles cells
    deterministically.  Ties rank by (state, candidate) index. *)
