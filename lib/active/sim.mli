(** Pluggable simulator interface for the acquisition loop.

    The loop only ever needs five capabilities: draw candidate device
    vectors, evaluate the dictionary on one, price a sample, and
    simulate a chosen (state, x).  Both the synthetic ground-truth
    generator (exact recovery scoring) and the physical MNA
    testbenches satisfy them; everything is deterministic from the
    seed with per-(round, candidate) derived streams, so loop runs are
    bit-identical at any domain count and nest as prefixes across
    budgets. *)

open Cbmf_linalg

type t = {
  name : string;
  n_states : int;  (** K *)
  n_basis : int;  (** M *)
  dim : int;  (** device-variable dimension d *)
  basis_row : Vec.t -> Vec.t;  (** dictionary row b(x), length M *)
  candidates : round:int -> n:int -> Vec.t array;
      (** deterministic per-round candidate pool; pools of different
          sizes nest as prefixes, rounds never share draws *)
  simulate : state:int -> index:int -> Vec.t -> float;
      (** one (possibly noisy) response; [index] addresses the noise
          stream so per-state draws nest across budgets *)
  cost : int -> float;
      (** per-sample simulation cost of a state, arbitrary units —
          the budget accounting's price column *)
}

val of_synthetic : Cbmf_circuit.Synthetic.t -> t
(** Ground-truth-backed simulator: candidates from
    {!Cbmf_circuit.Synthetic.candidate_xs}, responses from
    {!Cbmf_circuit.Synthetic.simulate}, unit cost. *)

val of_testbench :
  Cbmf_circuit.Testbench.t ->
  dictionary:Cbmf_basis.Dictionary.t ->
  poi:int ->
  seed:int ->
  t
(** Physical-testbench simulator: candidates are
    {!Cbmf_circuit.Process.sample} draws on (seed, round, i)-derived
    streams, responses are deterministic
    {!Cbmf_circuit.Testbench.evaluate_poi} calls, cost is the
    testbench's modeled seconds per sample.  Raises
    [Invalid_argument] on dictionary/testbench dimension mismatch or
    an out-of-range poi. *)

val seed_dataset : t -> n0:int -> Cbmf_model.Dataset.t
(** The loop's rectangular warm-up grid: the first [n0] round-0
    candidates, each simulated at every state (indices 0..n0−1 per
    state) — the same shape the fixed-grid baseline consumes, and the
    shared prefix of every longer run.  Costs [n0·K] simulations. *)
