open Cbmf_linalg
open Cbmf_model
open Cbmf_core

type config = {
  n0 : int;
  rounds : int;
  pool_size : int;
  policy : Acquire.policy;
  resync_every : int;
  budget : int;
  em : Em.config;
  checkpoints : int array;
}

let default_config =
  {
    n0 = 4;
    rounds = 16;
    pool_size = 16;
    policy = Acquire.Variance;
    resync_every = 4;
    budget = 0;
    em = { Em.default_config with max_iter = 8; tol = 1e-3 };
    checkpoints = [||];
  }

type round_log = {
  round : int;
  n_per_state : int;
  simulated : int;
  max_score : float;
  nlml : float;
  resync : bool;
  seconds : float;
}

type checkpoint = {
  at_samples : int;
  cp_coeffs : Mat.t;
  cp_active : int array;
}

type result = {
  sim_name : string;
  policy : Acquire.policy;
  prior : Prior.t;
  coeffs : Mat.t;
  active : int array;
  data : Dataset.t;
  logs : round_log array;
  checkpoints : checkpoint array;
  simulated : int;
  sim_cost : float;
  em_runs : int;
}

(* The EM's final active set, restricted to strictly positive λ — the
   primal factorization divides by λ, so a zero slipped in by the
   min_active fallback must not reach the updater. *)
let positive_active (prior : Prior.t) (post : Posterior.t) =
  let act =
    Array.of_seq
      (Seq.filter
         (fun j -> prior.Prior.lambda.(j) > 0.0)
         (Array.to_seq post.Posterior.active))
  in
  if Array.length act = 0 then
    invalid_arg "Loop.run: EM left no strictly positive lambda";
  act

let run ?(config = default_config) ~(sim : Sim.t) ~(prior0 : Prior.t) () =
  if config.n0 < 1 then invalid_arg "Loop.run: n0 must be >= 1";
  if config.pool_size < 1 then invalid_arg "Loop.run: pool_size must be >= 1";
  if Prior.n_basis prior0 <> sim.Sim.n_basis then
    invalid_arg "Loop.run: prior/simulator basis mismatch";
  if Prior.n_states prior0 <> sim.Sim.n_states then
    invalid_arg "Loop.run: prior/simulator state-count mismatch";
  let k = sim.Sim.n_states in
  let seed = Sim.seed_dataset sim ~n0:config.n0 in
  let stream = Stream.create seed in
  let simulated = ref (config.n0 * k) in
  let sim_cost = ref 0.0 in
  for s = 0 to k - 1 do
    sim_cost := !sim_cost +. (float_of_int config.n0 *. sim.Sim.cost s)
  done;
  let em_runs = ref 0 in
  let fit ?init_hypers () =
    incr em_runs;
    Em.run ~config:config.em ?init_hypers (Stream.dataset stream) prior0
  in
  let prior, post, _trace = fit () in
  let prior = ref prior in
  let upd = ref (Update.create (Stream.dataset stream) !prior
                   ~active:(positive_active !prior post)) in
  let logs = ref [] and cps = ref [] in
  let take_checkpoint () =
    if Array.mem !simulated config.checkpoints then
      cps :=
        {
          at_samples = !simulated;
          cp_coeffs = Update.coefficients !upd;
          cp_active = Array.copy (Update.active !upd);
        }
        :: !cps
  in
  take_checkpoint ();
  let r = ref 1 in
  let continue_ () =
    !r <= config.rounds
    && (config.budget <= 0 || !simulated + k <= config.budget)
  in
  while continue_ () do
    let t0 = Sys.time () in
    let round = !r in
    let xs = sim.Sim.candidates ~round ~n:config.pool_size in
    let rows = Array.map sim.Sim.basis_row xs in
    let choice, score =
      Acquire.select !upd ~policy:config.policy ~round ~cost:sim.Sim.cost
        ~rows
    in
    (* Simulate the winners: per state, the next free noise-stream
       index is the current per-state row count (seed rows used
       0..n0−1), so draws nest as prefixes across budgets. *)
    let idx = Stream.n_per_state stream in
    let chosen_rows = Array.init k (fun s -> rows.(choice.(s))) in
    let ys =
      Array.init k (fun s ->
          sim.Sim.simulate ~state:s ~index:idx xs.(choice.(s)))
    in
    for s = 0 to k - 1 do
      sim_cost := !sim_cost +. sim.Sim.cost s
    done;
    simulated := !simulated + k;
    Stream.append stream ~rows:chosen_rows ~ys;
    Update.append_round !upd ~rows:chosen_rows ~ys;
    (* Periodic resync: hyper-parameters have drifted stale, so rerun
       EM warm-started at the current Ω and rebuild the factorization
       on the (possibly changed) active set. *)
    let resync = config.resync_every > 0 && round mod config.resync_every = 0 in
    if resync then begin
      let prior', post', _ = fit ~init_hypers:!prior () in
      prior := prior';
      upd :=
        Update.create (Stream.dataset stream) !prior
          ~active:(positive_active !prior post')
    end;
    let max_score = Array.fold_left Float.max 0.0 score in
    logs :=
      {
        round;
        n_per_state = Stream.n_per_state stream;
        simulated = !simulated;
        max_score;
        nlml = Update.nlml !upd;
        resync;
        seconds = Sys.time () -. t0;
      }
      :: !logs;
    take_checkpoint ();
    incr r
  done;
  {
    sim_name = sim.Sim.name;
    policy = config.policy;
    prior = !prior;
    coeffs = Update.coefficients !upd;
    active = Array.copy (Update.active !upd);
    data = Stream.dataset stream;
    logs = Array.of_list (List.rev !logs);
    checkpoints = Array.of_list (List.rev !cps);
    simulated = !simulated;
    sim_cost = !sim_cost;
    em_runs = !em_runs;
  }
