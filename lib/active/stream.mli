(** The loop's growing dataset.

    A thin stateful wrapper over {!Cbmf_model.Dataset.append_row}: one
    acquisition round appends exactly one (row, response) per state, so
    the dataset stays rectangular and every EM resync can consume it
    directly.  Caches (column sums-of-squares/norms, Bᵀy) are warmed at
    creation and carried forward incrementally by the appends. *)

open Cbmf_linalg
open Cbmf_model

type t

val create : Dataset.t -> t
(** Wrap the seed dataset (warms its incremental caches). *)

val dataset : t -> Dataset.t
(** The current dataset — a fresh immutable value after every append. *)

val append : t -> rows:Vec.t array -> ys:float array -> unit
(** One new sample per state: [rows.(k)] is state [k]'s basis row,
    [ys.(k)] its simulated response. *)

val n0 : t -> int
(** Seed rows per state. *)

val appended : t -> int
(** Rounds appended since creation. *)

val n_per_state : t -> int
(** Current rows per state (= [n0 + appended]). *)
