open Cbmf_linalg
open Cbmf_model
open Cbmf_core

type t = {
  active : int array;
  a : int;
  k : int;
  ak : int;
  m : int;
  sigma0 : float;
  inv_s2 : float;
  log_det_a : float;
  p_chol : Chol.t;
  c : Vec.t;
  mutable yty : float;
  mutable nk : int;
  mutable appended : int;
  mutable sol : (Vec.t * Mat.t * float) option;
      (* (μ_w, μ as M×K, nlml) under the current factorization;
         invalidated by every append *)
  v_buf : Vec.t;
      (* aK scratch for the rank-one vector ([Chol.rank1_update]
         destroys its argument) *)
}

let create (d : Dataset.t) (prior : Prior.t) ~active =
  Array.iter
    (fun j ->
      if j < 0 || j >= d.Dataset.n_basis then
        invalid_arg "Update.create: active index out of range";
      if prior.Prior.lambda.(j) <= 0.0 then
        invalid_arg "Update.create: active lambda must be > 0")
    active;
  let sys = Posterior.primal_system d prior ~active in
  let k = d.Dataset.n_states and m = d.Dataset.n_basis in
  let a = Array.length active in
  let ak = a * k in
  let sigma0 = prior.Prior.sigma0 in
  {
    active = Array.copy active;
    a;
    k;
    ak;
    m;
    sigma0;
    inv_s2 = 1.0 /. (sigma0 *. sigma0);
    log_det_a = sys.Posterior.log_det_a;
    p_chol = Chol.factorize_with_retry sys.Posterior.p_mat;
    c = sys.Posterior.rhs;
    yty = sys.Posterior.yty;
    nk = sys.Posterior.sys_nk;
    appended = 0;
    sol = None;
    v_buf = Array.make ak 0.0;
  }

let nk t = t.nk

let n_states t = t.k

let n_basis t = t.m

let appended t = t.appended

let active t = t.active

let append t ~state ~row ~y =
  if state < 0 || state >= t.k then
    invalid_arg "Update.append: state out of range";
  if Array.length row <> t.m then
    invalid_arg "Update.append: basis row length mismatch";
  (* P ← P + σ0⁻²·b̃b̃ᵀ is the classic Cholesky rank-one update with
     v = b̃/σ0, where b̃ embeds the active slice of the basis row in
     state [state]'s block — O((aK)²), no refactorization. *)
  let v = t.v_buf in
  Array.fill v 0 t.ak 0.0;
  let off = state * t.a in
  Array.iteri (fun j col -> v.(off + j) <- row.(col) /. t.sigma0) t.active;
  Chol.rank1_update t.p_chol v;
  (* c ← c + y·b̃, ‖y‖² and NK grow by the sample. *)
  if y <> 0.0 then
    Array.iteri
      (fun j col -> t.c.(off + j) <- t.c.(off + j) +. (y *. row.(col)))
      t.active;
  t.yty <- t.yty +. (y *. y);
  t.nk <- t.nk + 1;
  t.appended <- t.appended + 1;
  t.sol <- None

let append_round t ~rows ~ys =
  if Array.length rows <> t.k || Array.length ys <> t.k then
    invalid_arg "Update.append_round: one row and response per state";
  for s = 0 to t.k - 1 do
    append t ~state:s ~row:rows.(s) ~y:ys.(s)
  done

(* Solve μ_w = σ0⁻²·P⁻¹c against the updated factorization and fold
   the NLML terms: everything here is O((aK)²) given the factor. *)
let refresh t =
  match t.sol with
  | Some s -> s
  | None ->
      let mu_w = Chol.solve_vec t.p_chol t.c in
      for i = 0 to t.ak - 1 do
        mu_w.(i) <- t.inv_s2 *. mu_w.(i)
      done;
      let mu = Mat.create t.m t.k in
      Array.iteri
        (fun j col ->
          for s = 0 to t.k - 1 do
            Mat.set mu col s mu_w.((s * t.a) + j)
          done)
        t.active;
      let y_ginv_y = t.inv_s2 *. (t.yty -. Vec.dot t.c mu_w) in
      let log_det_g =
        (2.0 *. float_of_int t.nk *. log t.sigma0)
        +. t.log_det_a +. Chol.log_det t.p_chol
      in
      let nlml = y_ginv_y +. log_det_g in
      let s = (mu_w, mu, nlml) in
      t.sol <- Some s;
      s

let mean t =
  let _, mu, _ = refresh t in
  mu

let nlml t =
  let _, _, nlml = refresh t in
  nlml

let coefficients t =
  let _, mu, _ = refresh t in
  Mat.transpose mu

let variance t ~state (b : Vec.t) =
  if state < 0 || state >= t.k then
    invalid_arg "Update.variance: state out of range";
  if Array.length b <> t.m then
    invalid_arg "Update.variance: basis row length mismatch";
  let u = Array.make t.ak 0.0 in
  Array.iteri (fun j col -> u.((state * t.a) + j) <- b.(col)) t.active;
  Float.max (Chol.quad_inv t.p_chol u) 0.0

let predictive t ~state (b : Vec.t) =
  let _, mu, _ = refresh t in
  let mean = ref 0.0 in
  Array.iter
    (fun col -> mean := !mean +. (b.(col) *. Mat.get mu col state))
    t.active;
  (!mean, variance t ~state b)
