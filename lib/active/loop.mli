(** The simulate→refit→acquire driver.

    One run closes the paper's missing loop: seed a rectangular warm-up
    grid, fit by EM, then per round (1) draw a deterministic candidate
    pool, (2) score it by predictive posterior variance under the
    streaming {!Update.t}, (3) simulate exactly one winner per state,
    (4) fold the samples in by rank-one updates, and (5) every
    [resync_every] rounds rerun EM {e warm-started} at the current
    hyper-parameters ({!Cbmf_core.Em.run}'s [?init_hypers]) and reseed
    the factorization.  Budget accounting counts simulator calls (and
    their cost units) — the quantity the paper prices in hours — never
    fit time.

    Everything is deterministic from (simulator seed, config): candidate
    pools and noise streams are address-derived, scoring fans out over
    the bit-identical {!Cbmf_parallel.Pool}, so a run's results are
    bit-identical at any domain count and a budget-B run's samples are
    a prefix of a budget-B′>B run's. *)

open Cbmf_linalg
open Cbmf_model
open Cbmf_core

type config = {
  n0 : int;  (** seed grid rows per state *)
  rounds : int;  (** max acquisition rounds (one sample per state each) *)
  pool_size : int;  (** candidates per round *)
  policy : Acquire.policy;
  resync_every : int;  (** rounds between warm EM resyncs; 0 = never *)
  budget : int;  (** max total simulator calls incl. seed; 0 = unlimited *)
  em : Em.config;  (** config for the cold fit and every resync *)
  checkpoints : int array;
      (** total-sample counts at which to snapshot coefficients (hit
          only when a round lands exactly on the count — rounds move in
          steps of K) *)
}

val default_config : config
(** n0 = 4, 16 rounds, pool 16, [Variance], resync every 4, no budget
    cap, EM capped at 8 iterations. *)

type round_log = {
  round : int;
  n_per_state : int;  (** after the round *)
  simulated : int;  (** cumulative simulator calls *)
  max_score : float;  (** best selection score (0 under [Round_robin]) *)
  nlml : float;  (** streaming NLML after the round (and any resync) *)
  resync : bool;  (** a warm EM resync ran this round *)
  seconds : float;  (** wall-clock of the round, fit time only *)
}

type checkpoint = {
  at_samples : int;
  cp_coeffs : Mat.t;  (** K×M coefficients the run would ship here *)
  cp_active : int array;
}

type result = {
  sim_name : string;
  policy : Acquire.policy;
  prior : Prior.t;  (** final hyper-parameters *)
  coeffs : Mat.t;  (** final K×M coefficients *)
  active : int array;
  data : Dataset.t;  (** everything simulated, seed first *)
  logs : round_log array;
  checkpoints : checkpoint array;
  simulated : int;
  sim_cost : float;  (** Σ cost(state) over all simulator calls *)
  em_runs : int;  (** 1 cold fit + warm resyncs *)
}

val run : ?config:config -> sim:Sim.t -> prior0:Prior.t -> unit -> result
(** [run ~sim ~prior0 ()] drives the loop to its round/budget limit.
    [prior0] is the cold EM start (λ all-positive, e.g. ones; R from
    {!Cbmf_core.Prior.r_of_r0}); resyncs warm-start from the running
    hyper-parameters instead.  Raises [Invalid_argument] on
    prior/simulator shape mismatches or a config with [n0 < 1] /
    [pool_size < 1]. *)
