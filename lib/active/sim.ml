open Cbmf_linalg
module Rng = Cbmf_prob.Rng
module Term = Cbmf_basis.Term

type t = {
  name : string;
  n_states : int;
  n_basis : int;
  dim : int;
  basis_row : Vec.t -> Vec.t;
  candidates : round:int -> n:int -> Vec.t array;
  simulate : state:int -> index:int -> Vec.t -> float;
  cost : int -> float;
}

let of_synthetic (gt : Cbmf_circuit.Synthetic.t) =
  let spec = gt.Cbmf_circuit.Synthetic.spec in
  let terms = gt.Cbmf_circuit.Synthetic.terms in
  let m = spec.Cbmf_circuit.Synthetic.m in
  {
    name =
      Printf.sprintf "synthetic-k%d-m%d" spec.Cbmf_circuit.Synthetic.k m;
    n_states = spec.Cbmf_circuit.Synthetic.k;
    n_basis = m;
    dim = spec.Cbmf_circuit.Synthetic.d;
    basis_row =
      (fun x -> Array.init m (fun j -> Term.eval terms.(j) x));
    candidates =
      (fun ~round ~n -> Cbmf_circuit.Synthetic.candidate_xs gt ~round ~n);
    simulate =
      (fun ~state ~index x ->
        Cbmf_circuit.Synthetic.simulate gt ~state ~index x);
    cost = (fun _ -> 1.0);
  }

(* Candidate streams for the physical testbenches reuse the synthetic
   generator's addressing discipline: one derived stream per
   (seed, round, candidate), so pools nest as prefixes across budgets
   and rounds never overlap. *)
let cand_base ~seed ~round =
  let open Int64 in
  add
    (mul (of_int seed) 0x9E3779B97F4A7C15L)
    (mul (of_int (round + 1)) 0xBF58476D1CE4E5B9L)

let of_testbench (tb : Cbmf_circuit.Testbench.t)
    ~(dictionary : Cbmf_basis.Dictionary.t) ~poi ~seed =
  let n_states = Cbmf_circuit.Testbench.n_states tb in
  let dim = Cbmf_circuit.Testbench.dim tb in
  if Cbmf_basis.Dictionary.input_dim dictionary <> dim then
    invalid_arg "Sim.of_testbench: dictionary/testbench dimension mismatch";
  if poi < 0 || poi >= Cbmf_circuit.Testbench.n_pois tb then
    invalid_arg "Sim.of_testbench: poi out of range";
  {
    name = tb.Cbmf_circuit.Testbench.name;
    n_states;
    n_basis = Cbmf_basis.Dictionary.size dictionary;
    dim;
    basis_row = (fun x -> Cbmf_basis.Dictionary.eval dictionary x);
    candidates =
      (fun ~round ~n ->
        if round < 0 then invalid_arg "Sim.candidates: round must be >= 0";
        if n < 1 then invalid_arg "Sim.candidates: n must be >= 1";
        Array.init n (fun i ->
            let rng = Rng.derive (cand_base ~seed ~round) ~index:i in
            Cbmf_circuit.Process.sample tb.Cbmf_circuit.Testbench.process rng));
    simulate =
      (fun ~state ~index:_ x ->
        (* The MNA "simulator" is deterministic in (state, x); the
           index only matters for stochastic oracles. *)
        Cbmf_circuit.Testbench.evaluate_poi tb ~state ~poi x);
    cost = (fun _ -> tb.Cbmf_circuit.Testbench.seconds_per_sample);
  }

(* The loop's seed grid: [n0] shared candidate draws (round 0),
   simulated at every state — the same rectangular N-per-state shape
   the fixed-grid baseline trains on, and the prefix every longer run
   shares.  Returns the dataset plus the per-state next-free simulate
   index (= n0 everywhere). *)
let seed_dataset sim ~n0 =
  if n0 < 1 then invalid_arg "Sim.seed_dataset: n0 must be >= 1";
  let xs = sim.candidates ~round:0 ~n:n0 in
  let rows = Array.map sim.basis_row xs in
  let m = sim.n_basis in
  let design =
    Array.init sim.n_states (fun _ ->
        let flat = Array.make (n0 * m) 0.0 in
        Array.iteri (fun i r -> Array.blit r 0 flat (i * m) m) rows;
        Mat.unsafe_of_flat ~rows:n0 ~cols:m flat)
  in
  let response =
    Array.init sim.n_states (fun s ->
        Array.init n0 (fun i -> sim.simulate ~state:s ~index:i xs.(i)))
  in
  Cbmf_model.Dataset.create ~design ~response
