open Cbmf_linalg
open Cbmf_model

type t = {
  mutable data : Dataset.t;
  n0 : int;
  mutable appended : int;
}

let create (d : Dataset.t) =
  (* Materialize the incremental caches up front so every append pays
     O(M) per cache instead of re-deriving O(N·M) later. *)
  for k = 0 to d.Dataset.n_states - 1 do
    ignore (Dataset.ssq d k);
    ignore (Dataset.column_norms d k);
    ignore (Dataset.bty d k)
  done;
  { data = d; n0 = d.Dataset.n_samples; appended = 0 }

let dataset t = t.data

let n0 t = t.n0

let appended t = t.appended

let n_per_state t = t.data.Dataset.n_samples

let append t ~(rows : Vec.t array) ~(ys : float array) =
  t.data <- Dataset.append_row t.data ~rows ~ys;
  t.appended <- t.appended + 1
