(** Streaming rank-one updates to the primal-path posterior.

    The active-learning loop appends one simulated sample at a time;
    refitting from scratch would cost a fresh O((aK)³) factorization
    per sample.  This module keeps the aK×aK Cholesky factor of
    P = A⁻¹ + σ0⁻²·DᵀD alive instead: a new sample (state s, basis row
    b, response y) adds σ0⁻²·b̃b̃ᵀ to P (b̃ = b's active slice embedded
    in state s's block), which is one {!Cbmf_linalg.Chol.rank1_update}
    — O((aK)²) — plus O(a) bookkeeping on c = Dᵀy, ‖y‖² and NK.  The
    posterior mean, predictive variance and NLML all read off the
    updated factor in O((aK)²), so the per-sample cost is o(full
    refit) by a factor of aK.

    The updater is exact for {e fixed} hyper-parameters Ω = {λ, R, σ0}
    and active set: an updated state agrees with a from-scratch
    {!Cbmf_core.Posterior.compute} on the grown dataset to
    factorization round-off (the parity tests pin ≤ 1e-8).  Hyper-
    parameter motion is handled by the loop's periodic warm-started EM
    resync, which rebuilds the updater via {!create}.

    Appends may be ragged (any state, any order) — P's math never
    requires equal per-state counts, only the seeding
    {!Cbmf_model.Dataset.t} does. *)

open Cbmf_linalg
open Cbmf_model
open Cbmf_core

type t

val create : Dataset.t -> Prior.t -> active:int array -> t
(** Seed the updater from a dataset: assembles the primal system via
    {!Cbmf_core.Posterior.primal_system} (same float-op order as the
    [`Primal] path) and factorizes it once.  Requires every active
    λ > 0. *)

val append : t -> state:int -> row:Vec.t -> y:float -> unit
(** [append t ~state ~row ~y] folds one sample in: [row] is the full
    M-length basis row (inactive columns are ignored).  O((aK)²). *)

val append_round : t -> rows:Vec.t array -> ys:float array -> unit
(** One sample per state (rows.(s), ys.(s)) — the loop's per-round
    append, K rank-one updates. *)

val mean : t -> Mat.t
(** M×K posterior mean under the current factorization (lazily solved,
    cached until the next append).  Rows off the active set are 0. *)

val coefficients : t -> Mat.t
(** K×M transpose of {!mean} — the layout the rest of the code base
    uses. *)

val nlml : t -> float
(** The exact primal-path NLML of the data seen so far:
    σ0⁻²(‖y‖² − cᵀμ_w) + 2·NK·log σ0 + log det A + log det P. *)

val variance : t -> state:int -> Vec.t -> float
(** Predictive posterior variance of the coefficient functional for a
    full M-length basis row at one state — the acquisition score.
    Exactly the [`Primal] path's quadratic form against the updated
    factor (add σ0² for observation noise).  Safe to call from pool
    workers: it only reads the factorization. *)

val predictive : t -> state:int -> Vec.t -> float * float
(** [(mean, variance)] of the latent model value — {!mean}'s dot with
    the row plus {!variance}.  Not worker-safe unless {!mean} (or
    {!nlml}) was forced since the last append. *)

val nk : t -> int
(** Total samples folded in (seed + appended). *)

val n_states : t -> int

val n_basis : t -> int

val appended : t -> int
(** Samples appended since {!create}. *)

val active : t -> int array
(** The active set the factorization lives on. *)
