open Cbmf_linalg
open Cbmf_parallel

type policy = Variance | Cost_weighted | Round_robin

let policy_name = function
  | Variance -> "variance"
  | Cost_weighted -> "cost_weighted"
  | Round_robin -> "round_robin"

let policy_of_string = function
  | "variance" -> Variance
  | "cost_weighted" -> Cost_weighted
  | "round_robin" -> Round_robin
  | s -> invalid_arg ("Acquire.policy_of_string: unknown policy " ^ s)

(* K×n predictive-variance grid, pool-fanned over all (state,
   candidate) cells.  [Update.variance] only reads the factorization,
   so workers never race; [Pool.map] keeps the result bit-identical at
   any domain count. *)
let variances upd ~(rows : Vec.t array) =
  let n = Array.length rows in
  let k = Update.n_states upd in
  let pool = Pool.default () in
  let flat =
    Pool.map pool ~n:(k * n) (fun idx ->
        let s = idx / n and c = idx mod n in
        Update.variance upd ~state:s rows.(c))
  in
  Array.init k (fun s -> Array.sub flat (s * n) n)

(* One winner per state.  Ties break toward the lowest candidate
   index, so selection is deterministic however the scores came out. *)
let argmax (scores : float array) =
  let best = ref 0 in
  for i = 1 to Array.length scores - 1 do
    if scores.(i) > scores.(!best) then best := i
  done;
  !best

(* Joint budgeted selection: the best [n] (state, candidate) cells of
   the whole grid, ranked by score — here cost-weighting has real
   teeth (cheap states win more slots), at the price of a ragged
   acquisition the streaming {!Update} absorbs but the rectangular
   EM-facing dataset cannot.  Ties rank by (state, candidate) index. *)
let select_top upd ~policy ~round ~cost ~(rows : Vec.t array) ~n =
  let nc = Array.length rows in
  if nc < 1 then invalid_arg "Acquire.select_top: empty candidate pool";
  if n < 1 then invalid_arg "Acquire.select_top: n must be >= 1";
  let k = Update.n_states upd in
  match policy with
  | Round_robin ->
      Array.init n (fun i ->
          let cell = ((round - 1) * n) + i in
          (cell mod k, cell / k mod nc))
  | Variance | Cost_weighted ->
      let var = variances upd ~rows in
      let cells = Array.init (k * nc) (fun i -> (i / nc, i mod nc)) in
      let score (s, c) =
        match policy with
        | Variance -> var.(s).(c)
        | Cost_weighted -> var.(s).(c) /. Float.max (cost s) 1e-300
        | Round_robin -> assert false
      in
      Array.sort
        (fun a b ->
          let d = compare (score b) (score a) in
          if d <> 0 then d else compare a b)
        cells;
      Array.sub cells 0 (Stdlib.min n (k * nc))

let select upd ~policy ~round ~cost ~(rows : Vec.t array) =
  let n = Array.length rows in
  if n < 1 then invalid_arg "Acquire.select: empty candidate pool";
  match policy with
  | Round_robin ->
      (* Model-blind control: every state takes the same rotating
         candidate — iid sampling at exactly the loop's budget
         accounting, the in-loop stand-in for the fixed grid. *)
      let k = Update.n_states upd in
      let pick = (round - 1 + (n * 1024)) mod n in
      (Array.make k pick, Array.make k 0.0)
  | Variance | Cost_weighted ->
      let var = variances upd ~rows in
      let k = Array.length var in
      let choice = Array.make k 0 and score = Array.make k 0.0 in
      for s = 0 to k - 1 do
        let scores =
          match policy with
          | Variance -> var.(s)
          | Cost_weighted ->
              let c = Float.max (cost s) 1e-300 in
              Array.map (fun v -> v /. c) var.(s)
          | Round_robin -> assert false
        in
        let i = argmax scores in
        choice.(s) <- i;
        score.(s) <- scores.(i)
      done;
      (choice, score)
