(** Ground-truth recovery experiments on synthetic workloads.

    A physical testbench can only score held-out prediction error; a
    {!Cbmf_circuit.Synthetic} workload additionally knows the true
    sparse template and coefficients, so it can score {e recovery}:
    support F1 against the planted support and entry-wise coefficient
    RMSE.  This module runs those scores over a
    (spec × sample-budget × method) grid — the evidence behind the
    paper's central claim that exploiting cross-state correlation
    recovers the truth from fewer simulations. *)

open Cbmf_circuit
open Cbmf_model

type method_ = [ `Cbmf | `Uncorrelated | `Somp_ols ]
(** [`Cbmf]: the full correlated fit.  [`Uncorrelated]: the ablation
    with R frozen at identity and r0 = 0 (shared template only).
    [`Somp_ols]: plain S-OMP selection with per-state least squares —
    the non-Bayesian baseline. *)

val method_name : method_ -> string

type cell = {
  spec : Synthetic.spec;
  n_per_state : int;  (** training sample budget *)
  method_ : method_;
  f1 : float;  (** support-recovery F1 vs the planted support *)
  precision : float;
  recall : float;
  coeff_rmse : float;  (** entry-wise RMSE vs the planted K×M α *)
  test_error : float;  (** pooled relative RMS on held-out data *)
  path : string;  (** posterior path at this shape: "dual"/"primal"; "-" for S-OMP *)
  seconds : float;  (** CPU time of the fit *)
}

val cbmf_config : Synthetic.spec -> Cbmf_core.Cbmf.config
(** Small grids sized to a synthetic spec (the planted support size
    bounds the useful θ) — recovery grids run many fits, so the full
    paper grid would be waste. *)

val uncorrelated_config : Synthetic.spec -> Cbmf_core.Cbmf.config

val posterior_path : Synthetic.t -> Dataset.t -> string
(** Which solver ([`Auto]) the posterior takes on this dataset when
    restricted to the {e true} support — "dual" or "primal"; the
    crossover the scaling bench records per (K, d) cell. *)

val run_method :
  truth:Synthetic.t -> train:Dataset.t -> test:Dataset.t -> method_ -> cell
(** Fit one method on one training set and score it against the truth. *)

val run_grid :
  ?n_test:int ->
  ?methods:method_ list ->
  specs:Synthetic.spec array ->
  budgets:int array ->
  unit ->
  cell array
(** The full grid, one truth per spec (training sets of different
    budgets nest as prefixes, exactly like a reused simulation
    archive).  [n_test] (default 30) held-out samples per state score
    [test_error].  Cells are ordered spec-major, then budget, then
    method. *)

val pp_cells : Format.formatter -> cell array -> unit
(** Aligned table, one row per cell. *)
