open Cbmf_linalg
open Cbmf_circuit
open Cbmf_model
open Cbmf_core

type method_ = [ `Cbmf | `Uncorrelated | `Somp_ols ]

let method_name = function
  | `Cbmf -> "cbmf"
  | `Uncorrelated -> "uncorrelated"
  | `Somp_ols -> "somp_ols"

type cell = {
  spec : Synthetic.spec;
  n_per_state : int;
  method_ : method_;
  f1 : float;
  precision : float;
  recall : float;
  coeff_rmse : float;
  test_error : float;
  path : string;
  seconds : float;
}

(* Recovery grids run dozens of fits; the grids below are sized to the
   spec (the planted support bounds the useful θ) so a grid finishes in
   seconds while still letting the initializer choose r0 and θ. *)
let cbmf_config (spec : Synthetic.spec) =
  {
    Cbmf.init =
      {
        Init.r0_grid = [| 0.0; 0.5; 0.9 |];
        sigma0_grid = [| 0.1 |];
        theta_max = spec.Synthetic.active_per_state + 3;
        n_folds = 2;
        lambda_off = 1e-7;
      };
    em = { Em.default_config with max_iter = 10; tol = 1e-4 };
  }

let uncorrelated_config (spec : Synthetic.spec) =
  let c = cbmf_config spec in
  {
    Cbmf.init = { c.Cbmf.init with Init.r0_grid = [| 0.0 |] };
    em = { c.Cbmf.em with Em.update_r = false };
  }

let path_name : Posterior.path -> string = function
  | `Dual -> "dual"
  | `Primal -> "primal"

let posterior_path (gt : Synthetic.t) (data : Dataset.t) =
  let spec = gt.Synthetic.spec in
  let lambda = Array.make spec.Synthetic.m 0.0 in
  Array.iteri
    (fun i col -> lambda.(col) <- gt.Synthetic.lambda.(i))
    gt.Synthetic.support;
  let prior =
    Prior.create ~lambda ~r:(Mat.copy gt.Synthetic.r)
      ~sigma0:(Float.max spec.Synthetic.noise_sigma 0.01)
  in
  let p =
    Posterior.compute ~need_sigma:false ~path:`Auto data prior
      ~active:gt.Synthetic.support
  in
  path_name p.Posterior.path

(* The constant column never belongs to a planted support (it models
   the intercept the standardizer absorbs), so it is excluded from
   every estimated support before scoring. *)
let nonconstant support =
  Array.of_seq (Seq.filter (fun j -> j > 0) (Array.to_seq support))

let score ~(truth : Synthetic.t) ~test ~estimate ~coeffs =
  let precision, recall =
    Metrics.support_precision_recall ~truth:truth.Synthetic.support ~estimate
  in
  let f1 = Metrics.support_f1 ~truth:truth.Synthetic.support ~estimate in
  let coeff_rmse =
    Metrics.coeffs_rmse ~truth:truth.Synthetic.coeffs ~estimate:coeffs
  in
  let test_error = Metrics.coeffs_error_pooled ~coeffs test in
  (precision, recall, f1, coeff_rmse, test_error)

let run_method ~(truth : Synthetic.t) ~train ~test method_ =
  let spec = truth.Synthetic.spec in
  let t0 = Sys.time () in
  let estimate, coeffs, path =
    match method_ with
    | (`Cbmf | `Uncorrelated) as m ->
        let config =
          match m with
          | `Cbmf -> cbmf_config spec
          | `Uncorrelated -> uncorrelated_config spec
        in
        let model = Cbmf.fit ~config train in
        let view = Cbmf.fitted_view model in
        ( nonconstant (Cbmf.active_raw view),
          model.Cbmf.coeffs,
          posterior_path truth train )
    | `Somp_ols ->
        let n_terms =
          Int.min
            (spec.Synthetic.active_per_state + 1)
            (train.Dataset.n_samples - 1)
          |> Int.max 1
        in
        let r = Somp.fit train ~n_terms in
        (nonconstant r.Somp.support, r.Somp.coeffs, "-")
  in
  let seconds = Sys.time () -. t0 in
  let precision, recall, f1, coeff_rmse, test_error =
    score ~truth ~test ~estimate ~coeffs
  in
  {
    spec;
    n_per_state = train.Dataset.n_samples;
    method_;
    f1;
    precision;
    recall;
    coeff_rmse;
    test_error;
    path;
    seconds;
  }

let run_grid ?(n_test = 30) ?(methods = [ `Cbmf; `Uncorrelated; `Somp_ols ])
    ~specs ~budgets () =
  let cells = ref [] in
  Array.iter
    (fun spec ->
      let truth = Synthetic.truth spec in
      let max_budget = Array.fold_left Int.max 1 budgets in
      let full = Synthetic.dataset truth ~n_per_state:max_budget in
      let test = Synthetic.test_dataset truth ~n_per_state:n_test in
      Array.iter
        (fun budget ->
          (* Prefix nesting: the smaller budget IS the first rows of the
             larger one, like replaying a stored simulation archive. *)
          let train = Dataset.truncate_samples full ~n:budget in
          List.iter
            (fun m -> cells := run_method ~truth ~train ~test m :: !cells)
            methods)
        budgets)
    specs;
  Array.of_list (List.rev !cells)

let pp_cells fmt cells =
  Format.fprintf fmt "%-6s %-4s %-6s %-13s %6s %6s %6s %9s %9s %7s %8s@."
    "K" "d" "n/st" "method" "F1" "prec" "recall" "coef_rmse" "test_err"
    "path" "sec";
  Array.iter
    (fun c ->
      Format.fprintf fmt "%-6d %-4d %-6d %-13s %6.3f %6.3f %6.3f %9.4f %9.4f %7s %8.3f@."
        c.spec.Synthetic.k c.spec.Synthetic.d c.n_per_state
        (method_name c.method_) c.f1 c.precision c.recall c.coeff_rmse
        c.test_error c.path c.seconds)
    cells
