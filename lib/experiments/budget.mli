(** Accuracy vs simulated-sample budget: the active-learning loop
    against the fixed-grid baseline.

    Both arms consume {e exactly} the same number of simulator calls
    and share one fitting route — cold EM from the same all-ones prior
    with the same config (the active arm re-fits warm-started every
    round, checkpointing at each budget) — so the only difference is
    {e where} the samples were placed: iid device draws (the paper's
    fixed grid, replayed by prefix truncation) versus
    predictive-variance acquisition from a candidate pool.  Scoring is
    against the synthetic ground truth: support F1 / precision /
    recall, coefficient RMSE, and held-out pooled test error. *)

open Cbmf_circuit

type point = {
  n_per_state : int;
  n_total : int;  (** simulator calls = n_per_state · K *)
  f1 : float;
  precision : float;
  recall : float;
  coeff_rmse : float;
  test_error : float;
}

type series = { label : string; points : point array }

type summary = {
  target_f1 : float;  (** baseline support-F1 at the largest budget *)
  target_rmse : float;  (** baseline coefficient RMSE at the largest budget *)
  grid_reach : int option;
      (** smallest grid budget (samples/state) reaching both targets
          (RMSE with 5% slack) *)
  active_reach : int option;  (** same for the active loop *)
  savings_pct : float option;
      (** 100·(1 − active_reach/grid_reach); [None] if either arm
          never reaches the targets *)
}

type result = {
  spec : Synthetic.spec;
  grid : series;
  active : series;
  summary : summary;
}

val default_em : Cbmf_core.Em.config
(** EM budget shared by both arms (15 iterations, tol 1e-4). *)

val run :
  ?em:Cbmf_core.Em.config ->
  ?n0:int ->
  ?pool_size:int ->
  ?policy:Cbmf_active.Acquire.policy ->
  ?n_test:int ->
  ?budgets:int array ->
  Synthetic.spec ->
  result
(** [run spec] evaluates both arms at every budget (samples per state;
    default n0+2, n0+4, … n0+14) and summarizes the sample savings.
    Deterministic from the spec.  Raises [Invalid_argument] if a
    budget does not exceed [n0] (the loop's warm-up grid). *)

val pp_result : Format.formatter -> result -> unit
(** The EXPERIMENTS.md table: one row per (method, budget), then the
    reach/savings summary line. *)
