open Cbmf_circuit
open Cbmf_model
open Cbmf_core
module Loop = Cbmf_active.Loop
module Sim = Cbmf_active.Sim
module Acquire = Cbmf_active.Acquire

(* Accuracy vs simulated samples: variance-driven acquisition against
   the fixed-grid (iid) baseline, at exactly matched simulator-call
   budgets.  Both arms share one fitting route — cold EM from the same
   all-ones prior, same config — so the acquisition policy is the only
   thing that differs; the paper prices simulator hours, so the x-axis
   is simulator calls, never fit time. *)

type point = {
  n_per_state : int;
  n_total : int;
  f1 : float;
  precision : float;
  recall : float;
  coeff_rmse : float;
  test_error : float;
}

type series = { label : string; points : point array }

type summary = {
  target_f1 : float;  (** baseline support-F1 at the largest budget *)
  target_rmse : float;  (** baseline coefficient RMSE at the largest budget *)
  grid_reach : int option;  (** smallest grid budget hitting both targets *)
  active_reach : int option;  (** same for the active loop *)
  savings_pct : float option;
      (** simulated-sample savings of active vs grid, in percent *)
}

type result = {
  spec : Synthetic.spec;
  grid : series;
  active : series;
  summary : summary;
}

(* The intercept column is absorbed by any sane support scorer (it is
   never planted), mirroring [Recovery]. *)
let nonconstant support =
  Array.of_seq (Seq.filter (fun j -> j > 0) (Array.to_seq support))

let default_em = { Em.default_config with Em.max_iter = 15; tol = 1e-4 }

let prior0_of_spec (spec : Synthetic.spec) =
  Prior.create
    ~lambda:(Array.make spec.Synthetic.m 1.0)
    ~r:(Prior.r_of_r0 ~n_states:spec.Synthetic.k ~r0:0.5)
    ~sigma0:(Float.max spec.Synthetic.noise_sigma 0.05)

let score_fit ~(truth : Synthetic.t) ~test ~(coeffs : Cbmf_linalg.Mat.t)
    ~active ~n_per_state =
  let estimate = nonconstant active in
  let precision, recall =
    Metrics.support_precision_recall ~truth:truth.Synthetic.support ~estimate
  in
  {
    n_per_state;
    n_total = n_per_state * truth.Synthetic.spec.Synthetic.k;
    f1 = Metrics.support_f1 ~truth:truth.Synthetic.support ~estimate;
    precision;
    recall;
    coeff_rmse =
      Metrics.coeffs_rmse ~truth:truth.Synthetic.coeffs ~estimate:coeffs;
    test_error = Metrics.coeffs_error_pooled ~coeffs test;
  }

(* Fixed-grid arm: cold EM on the first [b] rows of one iid archive —
   prefix nesting makes budget b literally the first b samples of
   budget b′ > b, the stored-simulation replay of [Recovery]. *)
let run_grid ~em ~truth ~test ~prior0 ~budgets =
  let b_max = Array.fold_left Int.max 1 budgets in
  let full = Synthetic.dataset truth ~n_per_state:b_max in
  let points =
    Array.map
      (fun b ->
        let train = Dataset.truncate_samples full ~n:b in
        let prior, post, _ = Em.run ~config:em train prior0 in
        let active =
          Array.of_seq
            (Seq.filter
               (fun j -> prior.Prior.lambda.(j) > 0.0)
               (Array.to_seq post.Posterior.active))
        in
        score_fit ~truth ~test ~coeffs:(Posterior.coefficients post) ~active
          ~n_per_state:b)
      budgets
  in
  { label = "fixed-grid"; points }

(* Active arm: one loop run with a checkpoint at every budget.
   [resync_every = 1] re-fits (warm-started) after every round, so a
   checkpoint's coefficients got the same EM treatment the baseline
   budget got — only the sample locations differ. *)
let run_active ~em ~truth ~prior0 ~test ~policy ~n0 ~pool_size ~budgets =
  let spec = truth.Synthetic.spec in
  let k = spec.Synthetic.k in
  let b_max = Array.fold_left Int.max 1 budgets in
  let config =
    {
      Loop.default_config with
      Loop.n0;
      rounds = b_max - n0;
      pool_size;
      policy;
      resync_every = 1;
      em;
      checkpoints = Array.map (fun b -> b * k) budgets;
    }
  in
  let res =
    Loop.run ~config ~sim:(Sim.of_synthetic truth) ~prior0:(prior0 ()) ()
  in
  let points =
    Array.map
      (fun b ->
        match
          Array.find_opt
            (fun (cp : Loop.checkpoint) -> cp.Loop.at_samples = b * k)
            res.Loop.checkpoints
        with
        | None ->
            invalid_arg
              (Printf.sprintf "Budget.run: no checkpoint at budget %d" b)
        | Some cp ->
            score_fit ~truth ~test ~coeffs:cp.Loop.cp_coeffs
              ~active:cp.Loop.cp_active ~n_per_state:b)
      budgets
  in
  ({ label = "active-" ^ Acquire.policy_name policy; points }, res)

let first_reach ~target_f1 ~target_rmse (s : series) =
  Array.fold_left
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None ->
          if p.f1 >= target_f1 -. 1e-9 && p.coeff_rmse <= target_rmse *. 1.05
          then Some p.n_per_state
          else None)
    None s.points

let summarize ~grid ~active =
  let last = grid.points.(Array.length grid.points - 1) in
  let target_f1 = last.f1 and target_rmse = last.coeff_rmse in
  let grid_reach = first_reach ~target_f1 ~target_rmse grid in
  let active_reach = first_reach ~target_f1 ~target_rmse active in
  let savings_pct =
    match (grid_reach, active_reach) with
    | Some g, Some a when g > 0 ->
        Some (100.0 *. (1.0 -. (float_of_int a /. float_of_int g)))
    | _ -> None
  in
  { target_f1; target_rmse; grid_reach; active_reach; savings_pct }

let run ?(em = default_em) ?(n0 = 4) ?(pool_size = 24)
    ?(policy = Acquire.Variance) ?(n_test = 50) ?budgets
    (spec : Synthetic.spec) =
  let budgets =
    match budgets with
    | Some b -> b
    | None -> Array.init 7 (fun i -> n0 + 2 + (2 * i))
  in
  Array.iter
    (fun b ->
      if b <= n0 then invalid_arg "Budget.run: budgets must exceed n0")
    budgets;
  let truth = Synthetic.truth spec in
  let test = Synthetic.test_dataset truth ~n_per_state:n_test in
  let prior0 () = prior0_of_spec spec in
  let grid = run_grid ~em ~truth ~test ~prior0:(prior0 ()) ~budgets in
  let active, _ =
    run_active ~em ~truth ~prior0 ~test ~policy ~n0 ~pool_size ~budgets
  in
  { spec; grid; active; summary = summarize ~grid ~active }

let pp_series fmt (s : series) =
  Array.iter
    (fun p ->
      Format.fprintf fmt "%-18s %6d %8d %6.3f %6.3f %6.3f %10.4f %10.4f@."
        s.label p.n_per_state p.n_total p.f1 p.precision p.recall p.coeff_rmse
        p.test_error)
    s.points

let pp_result fmt (r : result) =
  Format.fprintf fmt "# K=%d M=%d d=%d rho=%.2f sigma=%.2f seed=%d@."
    r.spec.Synthetic.k r.spec.Synthetic.m r.spec.Synthetic.d
    r.spec.Synthetic.rho r.spec.Synthetic.noise_sigma r.spec.Synthetic.seed;
  Format.fprintf fmt "%-18s %6s %8s %6s %6s %6s %10s %10s@." "method" "n/st"
    "n_total" "F1" "prec" "recall" "coef_rmse" "test_err";
  pp_series fmt r.grid;
  pp_series fmt r.active;
  let s = r.summary in
  Format.fprintf fmt "targets: F1 >= %.3f, rmse <= %.4f (grid at max budget)@."
    s.target_f1 s.target_rmse;
  (match (s.grid_reach, s.active_reach) with
  | Some g, Some a ->
      Format.fprintf fmt "reach: grid %d/state, active %d/state" g a
  | g, a ->
      Format.fprintf fmt "reach: grid %s, active %s"
        (match g with Some v -> string_of_int v | None -> "never")
        (match a with Some v -> string_of_int v | None -> "never"));
  match s.savings_pct with
  | Some pct -> Format.fprintf fmt " -> %.0f%% fewer simulated samples@." pct
  | None -> Format.fprintf fmt "@."
