open Cbmf_model
open Cbmf_circuit

type row = { poi : string; somp_error : float; cbmf_error : float }

type t = {
  workload_name : string;
  somp_samples : int;
  cbmf_samples : int;
  rows : row array;
  somp_sim_hours : float;
  cbmf_sim_hours : float;
  somp_fit_seconds : float;
  cbmf_fit_seconds : float;
  somp_overall_hours : float;
  cbmf_overall_hours : float;
  cost_reduction : float;
}

let run ?(cbmf_config = Cbmf_core.Cbmf.default_config) ?(somp_n_per_state = 35)
    ?(cbmf_n_per_state = 15) (data : Workload.data) =
  let w = data.Workload.workload in
  let tb = w.Workload.testbench in
  let k = Testbench.n_states tb in
  let n_pois = Testbench.n_pois tb in
  (* One fit pair per POI, fanned out across the domain pool; the
     per-POI timings come back with each row and are summed in POI
     order afterwards, so the table is independent of the schedule. *)
  let pool = Cbmf_parallel.Pool.default () in
  let fitted =
    Cbmf_parallel.Pool.map ~chunk:1 pool ~n:n_pois (fun poi ->
        let test = Workload.test_dataset data ~poi in
        let train_somp =
          Workload.train_dataset data ~poi ~n_per_state:somp_n_per_state
        in
        let train_cbmf =
          Workload.train_dataset data ~poi ~n_per_state:cbmf_n_per_state
        in
        let t0 = Unix.gettimeofday () in
        let somp, _ =
          Somp.fit_cv train_somp ~n_folds:4
            ~candidate_terms:[| 5; 10; 15; 20; 25; 30 |]
        in
        let somp_secs = Unix.gettimeofday () -. t0 in
        let model = Cbmf_core.Cbmf.fit ~config:cbmf_config train_cbmf in
        let row =
          {
            poi = Workload.poi_name w poi;
            somp_error = Metrics.coeffs_error_pooled ~coeffs:somp.Somp.coeffs test;
            cbmf_error = Cbmf_core.Cbmf.test_error model test;
          }
        in
        (row, somp_secs, model.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.fit_seconds))
  in
  let rows = Array.map (fun (row, _, _) -> row) fitted in
  let somp_fit_seconds =
    ref (Array.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 fitted)
  in
  let cbmf_fit_seconds =
    ref (Array.fold_left (fun acc (_, _, c) -> acc +. c) 0.0 fitted)
  in
  let somp_samples = somp_n_per_state * k in
  let cbmf_samples = cbmf_n_per_state * k in
  let somp_sim_hours = Testbench.simulation_cost_hours tb ~n_samples:somp_samples in
  let cbmf_sim_hours = Testbench.simulation_cost_hours tb ~n_samples:cbmf_samples in
  let somp_overall_hours = somp_sim_hours +. (!somp_fit_seconds /. 3600.0) in
  let cbmf_overall_hours = cbmf_sim_hours +. (!cbmf_fit_seconds /. 3600.0) in
  {
    workload_name = w.Workload.name;
    somp_samples;
    cbmf_samples;
    rows;
    somp_sim_hours;
    cbmf_sim_hours;
    somp_fit_seconds = !somp_fit_seconds;
    cbmf_fit_seconds = !cbmf_fit_seconds;
    somp_overall_hours;
    cbmf_overall_hours;
    cost_reduction = somp_overall_hours /. cbmf_overall_hours;
  }

let pp ppf t =
  let line name f1 f2 =
    Format.fprintf ppf "  %-34s %12s %12s@," name f1 f2
  in
  Format.fprintf ppf "@[<v 0>";
  Format.fprintf ppf "Table: performance modeling error and cost for %s@,"
    (String.uppercase_ascii t.workload_name);
  line "" "S-OMP" "C-BMF";
  line "Number of training samples"
    (string_of_int t.somp_samples)
    (string_of_int t.cbmf_samples);
  Array.iter
    (fun r ->
      line
        (Printf.sprintf "Modeling error for %s" r.poi)
        (Printf.sprintf "%.3f%%" (100.0 *. r.somp_error))
        (Printf.sprintf "%.3f%%" (100.0 *. r.cbmf_error)))
    t.rows;
  line "Simulation cost (hours)"
    (Printf.sprintf "%.2f" t.somp_sim_hours)
    (Printf.sprintf "%.2f" t.cbmf_sim_hours);
  line "Fitting cost (sec.)"
    (Printf.sprintf "%.2f" t.somp_fit_seconds)
    (Printf.sprintf "%.2f" t.cbmf_fit_seconds);
  line "Overall modeling cost (hours)"
    (Printf.sprintf "%.2f" t.somp_overall_hours)
    (Printf.sprintf "%.2f" t.cbmf_overall_hours);
  Format.fprintf ppf "  Cost reduction: %.2fx@," t.cost_reduction;
  Format.fprintf ppf "@]"

let accuracy_preserved t =
  (* 10 % relative slack, or 0.05 pp absolute for errors so small that
     the relative criterion is dominated by test-set noise. *)
  Array.for_all
    (fun r ->
      r.cbmf_error <= Float.max (1.1 *. r.somp_error) (r.somp_error +. 5e-4))
    t.rows
