(** Monte-Carlo sample generation over a testbench.

    Produces the raw per-state sample sets the modeling flow consumes:
    an N×dim matrix of variation points and an N×P matrix of PoI
    values for every state.  Samples are drawn independently per state
    (as in the paper's transistor-level Monte Carlo), with an optional
    shared-sample mode and optional Latin-hypercube stratification. *)

open Cbmf_linalg

type per_state = {
  xs : Mat.t;  (** N × dim variation samples *)
  ys : Mat.t;  (** N × n_pois performance values *)
}

type t = {
  testbench : Testbench.t;
  states : per_state array;
  n_per_state : int;
  dropped : int array;
      (** per-state count of samples dropped after exhausting retries
          (all zeros for a clean run) *)
}

val generate :
  ?shared_samples:bool ->
  ?lhs:bool ->
  ?max_retries:int ->
  ?diag:Cbmf_robust.Diag.t ->
  Testbench.t ->
  Cbmf_prob.Rng.t ->
  n_per_state:int ->
  t
(** [generate tb rng ~n_per_state] runs [n_per_state] samples for each
    state.  [shared_samples] (default false) reuses the same variation
    points across states; [lhs] (default false) stratifies the draw.

    Resilience: a sample whose simulation raises (e.g.
    {!Mna.Singular_circuit}) or produces a non-finite PoI is retried up
    to [max_retries] (default 3, capped at 14) times on a fresh
    variation point drawn from a sub-stream derived from the sample's
    global index via [Rng.derive] — recovery is therefore deterministic
    and independent of the domain count and execution order.  A sample
    that still fails is dropped; all states are then compacted to the
    worst state's surviving count so the result stays rectangular.
    Every failure and drop is recorded as a typed {!Cbmf_robust.Fault}
    in [diag] (or the ambient {!Cbmf_robust.Diag} recorder).  Honors
    the ["mc.sample"] fault-injection site.  With a clean simulator the
    output is bit-identical to the historical stream.  Raises
    [Cbmf_robust.Fault.Error (Sim_failure _)] if some state loses all
    its samples. *)

val curves : t -> freqs:float array -> Mat.t array
(** Per-state frequency-response curves of the testbench's swept PoI
    over the already-generated samples: element [(i, j)] of state [k]'s
    matrix is the curve value of sample [i] at [freqs.(j)].  Each
    sample's netlist is built once and swept via {!Mna.ac_sweep}; the
    evaluations are fanned over the domain pool with index-owned
    writes, so the result is bit-identical at any domain count.
    Raises [Invalid_argument] if the testbench has no [curve] (see
    {!Testbench.t}) or if [freqs] is invalid ({!Mna.ac_sweep}'s
    validation). *)

val total_samples : t -> int
(** Number of retained (state, sample) pairs — the unit of the cost
    model. *)

val total_dropped : t -> int
(** Total samples dropped across states after exhausting retries. *)

val poi_column : t -> state:int -> poi:int -> Vec.t
(** Response vector y_k for one PoI. *)

val truncate : t -> n:int -> t
(** First [n] samples of every state — lets one generation serve a
    whole sample-size sweep without re-simulating. *)

val simulation_hours : t -> float
