open Cbmf_linalg
open Cbmf_prob
open Cbmf_robust

type per_state = { xs : Mat.t; ys : Mat.t }

type t = {
  testbench : Testbench.t;
  states : per_state array;
  n_per_state : int;
  dropped : int array;
}

(* Retry streams live in a seed space keyed off [base] by a fixed
   constant, so they can never collide with the primary per-sample
   streams (base, stream·n + i) for any sample count. *)
let retry_salt = 0x5DEECE66DC0FFEE5L

let max_retry_slots = 16 (* retry attempts per sample are capped below this *)

let generate ?(shared_samples = false) ?(lhs = false) ?(max_retries = 3) ?diag
    tb rng ~n_per_state =
  if n_per_state <= 0 then
    invalid_arg "Montecarlo.generate: n_per_state must be positive";
  let max_retries = Stdlib.max 0 (Stdlib.min (max_retry_slots - 2) max_retries) in
  let dim = Testbench.dim tb in
  let k = Testbench.n_states tb in
  let n = n_per_state in
  (* One draw from the caller's stream keys the whole dataset: every
     per-state / per-sample RNG below derives from (base, index), so
     generation order — and hence the domain count — cannot change the
     result, while successive [generate] calls on one rng still see
     fresh data. *)
  let base = Rng.seed_of rng in
  let retry_base = Int64.logxor base retry_salt in
  let pool = Cbmf_parallel.Pool.default () in
  let note f = match diag with Some d -> Diag.record d f | None -> Diag.note f in
  let draw_xs ~stream =
    if lhs then
      (* LHS strata are coupled along the sample axis, so the whole
         matrix is one stream. *)
      Lhs.gaussian (Rng.derive base ~index:stream) ~n ~dim
    else begin
      (* Row i of [xs] comes from its own stream (base, stream·n + i). *)
      let xs = Mat.create n dim in
      Cbmf_parallel.Pool.parallel_for pool ~n (fun i ->
          let r = Rng.derive base ~index:((stream * n) + i) in
          for j = 0 to dim - 1 do
            Mat.set xs i j (Rng.gaussian r)
          done);
      xs
    end
  in
  let xs_all =
    if shared_samples then begin
      let shared = draw_xs ~stream:0 in
      Array.init k (fun s -> if s = 0 then shared else Mat.copy shared)
    end
    else Array.init k (fun s -> draw_xs ~stream:s)
  in
  let p = Testbench.n_pois tb in
  let ys_all = Array.init k (fun _ -> Mat.create n p) in
  (* Per-sample evaluation with bounded, deterministic recovery: a
     sample whose simulation raises (or returns a non-finite PoI) is
     re-drawn from a retry sub-stream derived from the sample's global
     index — NOT from shared RNG state — so recovery is bit-identical
     at any domain count and in any execution order.  A sample that
     still fails after [max_retries] redraws is dropped (recorded
     below); [keep] is written index-owned, preserving the pool's
     determinism contract. *)
  let keep = Array.make (k * n) true in
  Cbmf_parallel.Pool.parallel_for pool ~n:(k * n) (fun idx ->
      let s = idx / n and i = idx mod n in
      Inject.with_scope ~key:idx @@ fun () ->
      let eval row =
        if Inject.fire ~site:"mc.sample" then Array.make p Float.nan
        else tb.Testbench.evaluate ~state:s row
      in
      let classify tries = function
        | Mna.Singular_circuit -> Fault.Singular { site = "mna.solve"; dim = 0 }
        | Fault.Error f -> f
        | e ->
            ignore tries;
            Fault.Worker_error
              { site = "mc.sample"; message = Printexc.to_string e }
      in
      let rec attempt t row =
        let outcome =
          match eval row with
          | pois when Array.length pois = p && Array.for_all Float.is_finite pois
            ->
              Ok pois
          | pois ->
              if Array.length pois <> p then
                Error
                  (Fault.Worker_error
                     { site = "mc.sample"; message = "wrong PoI count" })
              else
                Error (Fault.Non_finite { site = "mc.sample"; what = "poi"; index = idx })
          | exception e -> Error (classify t e)
        in
        match outcome with
        | Ok pois ->
            if t > 0 then Mat.set_row xs_all.(s) i row;
            Mat.set_row ys_all.(s) i pois
        | Error f ->
            note f;
            if t >= max_retries then begin
              note
                (Fault.Sim_failure
                   { site = "mc.sample"; state = s; sample = i; tries = t + 1 });
              keep.(idx) <- false
            end
            else begin
              let r =
                Rng.derive retry_base ~index:((idx * max_retry_slots) + t + 1)
              in
              attempt (t + 1) (Array.init dim (fun _ -> Rng.gaussian r))
            end
      in
      attempt 0 (Mat.row xs_all.(s) i));
  let dropped = Array.make k 0 in
  for idx = 0 to (k * n) - 1 do
    if not keep.(idx) then dropped.(idx / n) <- dropped.(idx / n) + 1
  done;
  let total_dropped = Array.fold_left ( + ) 0 dropped in
  if total_dropped = 0 then
    (* Fast path: the arrays are exactly the evaluated ones (and with a
       clean simulator, bit-identical to the historical stream). *)
    let states = Array.init k (fun s -> { xs = xs_all.(s); ys = ys_all.(s) }) in
    { testbench = tb; states; n_per_state; dropped }
  else begin
    (* Compact to the surviving rows.  Dataset consumers need a
       rectangular per-state layout, so every state keeps its first
       [n_keep] surviving samples where [n_keep] is the worst state's
       count — fully determined by [keep], hence domain-invariant. *)
    let kept_rows =
      Array.init k (fun s ->
          let rows = ref [] in
          for i = n - 1 downto 0 do
            if keep.((s * n) + i) then rows := i :: !rows
          done;
          Array.of_list !rows)
    in
    let n_keep = Array.fold_left (fun m r -> Stdlib.min m (Array.length r)) n kept_rows in
    if n_keep = 0 then
      raise
        (Fault.Error
           (Fault.Sim_failure
              { site = "mc.generate"; state = 0; sample = 0; tries = max_retries + 1 }));
    let states =
      Array.init k (fun s ->
          let rows = kept_rows.(s) in
          {
            xs = Mat.init n_keep dim (fun i j -> Mat.get xs_all.(s) rows.(i) j);
            ys = Mat.init n_keep p (fun i j -> Mat.get ys_all.(s) rows.(i) j);
          })
    in
    { testbench = tb; states; n_per_state = n_keep; dropped }
  end

(* Frequency-response curves over an already-generated sample set: one
   row per retained sample, one column per frequency.  Each (state,
   sample) cell owns its output row, so fanning the evaluations over
   the pool keeps the result bit-identical at any domain count; each
   evaluation builds its netlist once and sweeps it via
   [Mna.ac_sweep]. *)
let curves mc ~freqs =
  let tb = mc.testbench in
  let curve =
    match tb.Testbench.curve with
    | Some c -> c
    | None ->
        invalid_arg
          (Printf.sprintf
             "Montecarlo.curves: testbench %s has no frequency-sweep PoI"
             tb.Testbench.name)
  in
  let k = Array.length mc.states and n = mc.n_per_state in
  let nf = Array.length freqs in
  let out = Array.init k (fun _ -> Mat.create n nf) in
  let pool = Cbmf_parallel.Pool.default () in
  Cbmf_parallel.Pool.parallel_for pool ~n:(k * n) (fun idx ->
      let s = idx / n and i = idx mod n in
      Mat.set_row out.(s) i (curve ~state:s (Mat.row mc.states.(s).xs i) ~freqs));
  out

let total_samples mc = Array.length mc.states * mc.n_per_state

let total_dropped mc = Array.fold_left ( + ) 0 mc.dropped

let poi_column mc ~state ~poi = Mat.col mc.states.(state).ys poi

let truncate mc ~n =
  assert (n > 0 && n <= mc.n_per_state);
  let cut (s : per_state) =
    {
      xs = Mat.submatrix s.xs ~row0:0 ~col0:0 ~rows:n ~cols:s.xs.Mat.cols;
      ys = Mat.submatrix s.ys ~row0:0 ~col0:0 ~rows:n ~cols:s.ys.Mat.cols;
    }
  in
  { mc with states = Array.map cut mc.states; n_per_state = n }

let simulation_hours mc =
  Testbench.simulation_cost_hours mc.testbench ~n_samples:(total_samples mc)
