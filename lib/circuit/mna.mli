(** Complex-valued modified nodal analysis for small-signal AC and
    noise simulation.

    All elements are admittance-stamped (resistors, capacitors,
    inductors, VCCS); independent excitations are current injections,
    so a Thévenin source must be Norton-transformed by the caller (the
    testbenches do).  Node [0] is ground.

    Element constructors validate their inputs and raise
    [Invalid_argument] (naming the offending node or value) on
    out-of-range nodes, negative/non-finite R, C, L or conductances —
    validation that survives [-noassert] release builds.  {!ac} honors
    the ["mna.solve"] fault-injection site (see
    {!Cbmf_robust.Inject}). *)

type node = int

type t
(** Mutable netlist builder. *)

val create : unit -> t

val ground : node

val fresh_node : t -> string -> node
(** Allocate a named node. *)

val node_count : t -> int
(** Number of nodes including ground. *)

val node_name : t -> node -> string

val resistor : t -> node -> node -> float -> unit
(** [resistor ckt a b r] with [r > 0] ohms. *)

val conductance : t -> node -> node -> float -> unit

val capacitor : t -> node -> node -> float -> unit

val inductor : t -> node -> node -> float -> unit
(** Note: inductors are admittance-stamped (1/jωL), so the analysis
    frequency must be nonzero. *)

val vccs :
  t -> out_pos:node -> out_neg:node -> ctrl_pos:node -> ctrl_neg:node ->
  gm:float -> unit
(** Current [gm·(V(ctrl_pos) − V(ctrl_neg))] flowing out of [out_pos]
    into [out_neg] — the standard transconductance stamp. *)

val element_count : t -> int

(** {1 AC analysis} *)

type analysis
(** A factorized system at one frequency; solves are O(n²) each. *)

exception Singular_circuit
(** Raised when the nodal matrix is singular (e.g. a floating node). *)

val ac : t -> freq:float -> analysis
(** Build and factorize the nodal matrix at [freq] (Hz, > 0). *)

val ac_sweep : t -> freqs:float array -> analysis array
(** Factorized systems at every frequency of a sweep, stamping the
    netlist only once: the frequency-independent conductance plane and
    the reactive (jωC, −j/ωΓ) stamps are split when the sweep is
    compiled, and each frequency reassembles Y(ω) as a scaled add.
    The per-frequency result is bit-identical to calling {!ac} at that
    frequency (same accumulation order, same factorization), and the
    ["mna.solve"] fault-injection site fires once per frequency, as a
    per-frequency {!ac} loop would.

    [freqs] must be non-empty, every entry positive and finite, and
    strictly increasing; violations raise [Invalid_argument] naming
    the offending entry and its index. *)

val solve_injection : analysis -> pos:node -> neg:node -> Complex.t array
(** Node voltages (index 0 = ground = 0V) for a unit AC current
    injected into [pos] and drawn from [neg]. *)

val voltage : Complex.t array -> node -> Complex.t
(** Convenience accessor into a solution. *)

val differential : Complex.t array -> node -> node -> Complex.t
