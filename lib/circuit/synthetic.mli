(** Synthetic scalable C-BMF workloads with known sparse ground truth.

    The physical testbenches pin the problem shape (K = 32 states,
    d ≈ 1300 device variables) and, being deterministic simulators,
    can never say whether a fitted model recovered "the" truth — there
    is none to compare against.  This module manufactures workloads of
    {e any} (K, M, d) from an eight-field seeded {!spec}:

    - a sparse ground-truth coefficient template shared across states,
      whose per-state magnitudes are drawn with controllable
      cross-state correlation ρ — per active basis function m,
      [α_m ~ N(0, λ_m·R(ρ))] with [R(ρ)[i,j] = ρ^|i−j|], exactly the
      C-BMF prior (the Kronecker-style draw [α ~ N(0, λ·R ⊗ I)] over
      the active block);
    - a [rand_cov]-style SPD covariance factory with density/shape
      knobs for correlated device-variable draws (dense Cholesky at
      small d, a low-rank-plus-diagonal form that keeps draws O(d·r)
      at d = 10⁵);
    - {!Cbmf_model.Dataset.t} views that plug directly into
      [Cbmf_core.Cbmf.fit] / [Init.run], and serving-side inputs
      ({!batch_inputs}, {!posterior_cov_blocks}) that
      [Cbmf_serve.Model.of_synthetic] assembles into engine-stress
      snapshots — no MNA netlist anywhere.

    Everything is deterministic from the spec: generation fans out
    over a {!Cbmf_parallel.Pool} with one derived RNG stream per
    (state, sample), so results are bit-identical at any domain count,
    and datasets nest — the n-sample dataset is the first n samples of
    the n′ > n one, like a stored simulation archive replayed at
    different budgets. *)

open Cbmf_linalg
open Cbmf_parallel
open Cbmf_model

(** {1 Specs} *)

type spec = {
  k : int;  (** states K ≥ 1 *)
  m : int;  (** dictionary size M (constant + linear + squares), 2 ≤ m ≤ 2d+1 *)
  d : int;  (** device variables ≥ 1 *)
  active_per_state : int;  (** true support size, in [1, m−1] *)
  rho : float;  (** cross-state coefficient correlation, in [0, 1) *)
  noise_sigma : float;  (** observation noise sd ≥ 0 *)
  density : float;  (** device-covariance density knob, in [0, 1] *)
  seed : int;
}

val default_spec : spec
(** K = 8, M = 41, d = 40, 5 active, ρ = 0.9, σ = 0.05,
    density = 0.2, seed = 1. *)

val validate_spec : spec -> (unit, string) result

val spec_to_string : spec -> string
(** One-line canonical form; floats printed in hex so
    {!spec_of_string} round-trips {e exactly} (bit-for-bit). *)

val spec_of_string : string -> spec
(** Inverse of {!spec_to_string}.  Raises [Invalid_argument] on
    malformed input or an invalid spec. *)

(** {1 SPD covariance factory} *)

val rand_cov : rng:Cbmf_prob.Rng.t -> dim:int -> density:float -> shape:float -> Mat.t
(** Random symmetric positive definite matrix with unit diagonal.
    [density ∈ [0, 1]] controls the fraction of nonzero entries in the
    random factor G (Σ ∝ GᵀG + shape·d̄·I before normalization), so
    off-diagonal mass grows with it; [shape > 0] controls diagonal
    dominance — larger is better conditioned.  [density = 0] is
    exactly the identity.  Deterministic in [rng]. *)

type device_cov =
  | Diagonal of float array  (** per-variable variances *)
  | Dense of Mat.t  (** lower Cholesky factor L of Σ (d×d) *)
  | Low_rank of { factor : Mat.t; noise : float array }
      (** Σ = F·Fᵀ + diag(noise) with F d×r — draws cost O(d·r), the
          only form that scales to d = 10⁵ *)

val device_cov_of_spec : spec -> device_cov
(** [Diagonal] ones when [density = 0]; dense {!rand_cov} Cholesky for
    d ≤ 512; [Low_rank] (r = 16) above. *)

val draw_x : device_cov -> Cbmf_prob.Rng.t -> Vec.t
(** One correlated device-variable draw (length d). *)

(** {1 Ground truth} *)

type t = {
  spec : spec;
  terms : Cbmf_basis.Term.t array;
      (** the m dictionary terms: constant, linear, then squares *)
  support : int array;  (** true active columns, sorted, all ≥ 1 *)
  lambda : float array;  (** per-support prior variances of the draw *)
  coeffs : Mat.t;  (** K×M true α — zeros off support *)
  r : Mat.t;  (** K×K R(ρ) the template magnitudes were drawn under *)
  device : device_cov;
}

val truth : ?per_state_drop:float -> spec -> t
(** Deterministic ground truth for a spec.  [per_state_drop ∈ [0, 1)]
    (default 0) zeroes each (state, active term) coefficient with that
    probability — models whose effective support {e differs per state},
    the serving-engine stress case.  Raises [Invalid_argument] on an
    invalid spec or drop. *)

val mean_at : t -> state:int -> Vec.t -> float
(** The noise-free true response [b(x)·α_state] for a raw device
    vector x (length d) — the oracle every prediction path is checked
    against. *)

(** {1 Dataset views} *)

type corruption = {
  bad_state : int;
  bad_row : int;
  bad_col : int;  (** design column, or [-1] for the response *)
  bad_value : float;  (** the planted value, e.g. [Float.nan] *)
}

val dataset :
  ?pool:Pool.t -> ?corrupt:corruption list -> t -> n_per_state:int -> Dataset.t
(** Training dataset: per state, [n_per_state] rows of basis values
    over fresh correlated device draws, responses
    [b(x)·α_state + σ·ε].  Fans per-state generation over [pool]
    (default {!Pool.default}); one {!Cbmf_prob.Rng.derive}d stream per
    (state, sample) makes the result bit-identical at any domain count,
    and datasets of different [n_per_state] nest as prefixes.
    [corrupt] plants the given values after generation (the
    [Dataset.validate] test harness); out-of-range coordinates raise
    [Invalid_argument]. *)

val test_dataset : ?pool:Pool.t -> t -> n_per_state:int -> Dataset.t
(** Held-out dataset from an independent stream (never overlaps
    {!dataset} at any budget). *)

(** {1 Per-sample simulation oracle} *)

val simulate : t -> state:int -> index:int -> Vec.t -> float
(** [simulate t ~state ~index x] is one noisy response
    [mean_at t ~state x + σ·ε] where ε comes from a derived stream
    addressed by (state, index) — independent of the dataset streams,
    deterministic per index, materializable in any order.  An
    acquisition loop that assigns consecutive indices per state gets
    draws that nest as prefixes across budgets, exactly like
    {!dataset} rows do.  Raises [Invalid_argument] on a negative
    index; [state]/[x] are checked by {!mean_at}. *)

val candidate_xs : t -> round:int -> n:int -> Vec.t array
(** [candidate_xs t ~round ~n] is a deterministic pool of [n]
    correlated device draws for acquisition round [round], each from
    its own (round, i)-addressed stream — pools of different sizes
    nest as prefixes, and distinct rounds never share draws (or
    overlap the dataset/simulation streams).  Raises
    [Invalid_argument] when [round < 0] or [n < 1]. *)

(** {1 Serving-engine stress inputs} *)

val batch_inputs : t -> salt:int -> n:int -> Mat.t * int array
(** [n] raw device vectors (n×d) from an independent stream keyed by
    [salt], with states assigned round-robin over all K — the input of
    an [Engine.predict_batch] stress call. *)

val posterior_cov_blocks : t -> Mat.t array
(** K deterministic SPD a×a blocks (a = [active_per_state]), scaled to
    the noise level — stand-ins for fitted posterior covariance so a
    spec-driven serving snapshot is complete without running EM. *)
