open Cbmf_linalg

type t = {
  name : string;
  process : Process.t;
  knobs : Knob.t array;
  poi_names : string array;
  poi_units : string array;
  evaluate : state:int -> Vec.t -> float array;
  curve : (state:int -> Vec.t -> freqs:float array -> float array) option;
  seconds_per_sample : float;
}

let evaluate_curve tb ~state ~freqs x =
  match tb.curve with
  | Some c -> c ~state x ~freqs
  | None ->
      invalid_arg
        (Printf.sprintf "Testbench.evaluate_curve: %s has no frequency-sweep \
                         PoI" tb.name)

let dim tb = Process.dim tb.process

let n_states tb = Array.length tb.knobs

let n_pois tb = Array.length tb.poi_names

let poi_index tb name =
  let rec go i =
    if i >= Array.length tb.poi_names then raise Not_found
    else if String.equal tb.poi_names.(i) name then i
    else go (i + 1)
  in
  go 0

let evaluate_poi tb ~state ~poi x =
  assert (state >= 0 && state < n_states tb);
  assert (poi >= 0 && poi < n_pois tb);
  (tb.evaluate ~state x).(poi)

let simulation_cost_hours tb ~n_samples =
  assert (n_samples >= 0);
  float_of_int n_samples *. tb.seconds_per_sample /. 3600.0
