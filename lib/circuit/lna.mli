(** Tunable 2.4 GHz inductively-degenerated cascode LNA.

    Mirrors the paper's first example: 1264 process variables
    (8 inter-die + 4 × 314 devices) and 32 knob states implemented as a
    tunable bias-current mirror.  PoIs: noise figure (dB), voltage gain
    (dB) and IIP3 (dBm).

    Gain and NF come from a small-signal MNA + noise analysis of the
    cascode core at 2.4 GHz; IIP3 from the weak-nonlinearity analysis
    of the input device including inductive-degeneration feedback.
    Periphery devices (mirror legs, bias chain, decap/ESD) enter
    through physically-motivated aggregates: mirror-ratio error, bias
    reference error, and output-tank loading. *)

val n_process_variables : int
(** 1264, as in the paper. *)

val n_states : int
(** 32. *)

val create : unit -> Testbench.t

(** {1 Introspection for tests and examples} *)

type internals = {
  bias_current : float;  (** mirrored drain current of the input device *)
  gm1 : float;
  nf_db : float;
  vg_db : float;
  iip3_dbm : float;
}

val evaluate_internals : Testbench.t -> state:int -> Cbmf_linalg.Vec.t -> internals
(** Same computation as [evaluate], exposing intermediates.  Only valid
    on testbenches built by {!create}. *)

val gain_curve :
  Testbench.t ->
  state:int ->
  Cbmf_linalg.Vec.t ->
  freqs:float array ->
  float array
(** Voltage gain (dB) at every frequency of the sweep — the sample's
    small-signal netlist is built and split-stamped once
    ({!Mna.ac_sweep}) and reassembled per point.  This is the function
    behind the testbench's [curve] field.  Only valid on testbenches
    built by {!create}. *)

val gain_curve_naive :
  Testbench.t ->
  state:int ->
  Cbmf_linalg.Vec.t ->
  freqs:float array ->
  float array
(** Reference path for {!gain_curve}: rebuilds the netlist and runs a
    full {!Mna.ac} stamp + factorization per frequency.  Bit-identical
    results; kept as oracle and bench baseline. *)
