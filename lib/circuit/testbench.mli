(** Uniform interface between a tunable circuit and the modeling flow.

    A testbench knows its variation space, its knob states, its
    performances of interest, and how to "simulate" one sample: map a
    normalized variation vector to the PoI values of one state.  It
    also carries the cost model used for the paper's cost columns. *)

open Cbmf_linalg

type t = {
  name : string;
  process : Process.t;
  knobs : Knob.t array;
  poi_names : string array;
  poi_units : string array;
  evaluate : state:int -> Vec.t -> float array;
      (** All PoIs of one state at one variation sample.  Deterministic
          in its inputs. *)
  curve : (state:int -> Vec.t -> freqs:float array -> float array) option;
      (** Multi-frequency PoI (e.g. a gain curve in dB) of one state at
          one variation sample, one value per entry of [freqs] — backed
          by a single split-stamp {!Mna.ac_sweep} pass over the sample's
          netlist, so an M-point curve does not cost M netlist
          rebuilds.  [None] for testbenches without a frequency-swept
          observable.  Deterministic in its inputs. *)
  seconds_per_sample : float;
      (** Modeled transistor-level simulation cost per sample (one
          state, one variation point) on the paper's reference
          server. *)
}

val dim : t -> int
(** Number of variation variables. *)

val n_states : t -> int

val n_pois : t -> int

val poi_index : t -> string -> int
(** Raises [Not_found] for unknown PoI names. *)

val evaluate_poi : t -> state:int -> poi:int -> Vec.t -> float

val evaluate_curve : t -> state:int -> freqs:float array -> Vec.t -> float array
(** The frequency-swept PoI of one sample; raises [Invalid_argument]
    when the testbench has no [curve]. *)

val simulation_cost_hours : t -> n_samples:int -> float
(** Modeled cost of [n_samples] transistor-level simulations, hours. *)
