open Cbmf_linalg

let n_states = 32

let f0 = 2.4e9

let omega0 = 2.0 *. Float.pi *. f0

let rsource = 50.0

(* Roster: 7 core transistors (RF pair, 4 switches, tail) + 314
   periphery = 321 devices, plus 11 resistor-mismatch variables:
   8 + 4·321 + 11 = 1303. *)
let n_core = 7

let n_lo_buffer = 64

let n_bias_chain = 64

let n_decap = 186

let n_devices = n_core + n_lo_buffer + n_bias_chain + n_decap

let n_resistor_vars = 11

let n_process_variables =
  Process.n_globals + (Process.params_per_device * n_devices) + n_resistor_vars

let () = assert (n_process_variables = 1303)

let geom_rf = { Mosfet.w = 48e-6; l = 32e-9 }

let geom_sw = { Mosfet.w = 24e-6; l = 32e-9 }

let geom_tail = { Mosfet.w = 96e-6; l = 64e-9 }

let device_specs =
  let spec name (g : Mosfet.geometry) =
    { Process.dev_name = name; dev_w = g.Mosfet.w; dev_l = g.Mosfet.l }
  in
  let core =
    [| spec "MRF1" geom_rf; spec "MRF2" geom_rf; spec "MSW1" geom_sw;
       spec "MSW2" geom_sw; spec "MSW3" geom_sw; spec "MSW4" geom_sw;
       spec "MT" geom_tail |]
  in
  let named prefix i =
    { Process.dev_name = Printf.sprintf "%s%d" prefix i; dev_w = 2e-6; dev_l = 100e-9 }
  in
  let decap i =
    { Process.dev_name = Printf.sprintf "MCAP%d" i; dev_w = 5e-6; dev_l = 1e-6 }
  in
  Array.concat
    [ core;
      Array.init n_lo_buffer (named "MLO");
      Array.init n_bias_chain (named "MBIAS");
      Array.init n_decap decap ]

(* Knob: load R-DAC, 300 → 858 Ω over 32 codes (both sides switched
   together). *)
let knobs = Knob.sweep ~n_states ~lo:300.0 ~hi:858.0

let nominal_tail = 4.0e-3

let lo_amplitude = 0.6

let supply_headroom = 0.45
(* Output swing (per side, V) before hard compression. *)

let mirror_gm_over_id = 8.0

type internals = {
  tail_current : float;
  gm_rf : float;
  load_ohms : float;
  conversion_gain : float;
  nf_db : float;
  vg_db : float;
  i1dbcp_dbm : float;
}

let mean_over f lo n =
  let acc = ref 0.0 in
  for i = lo to lo + n - 1 do
    acc := !acc +. f i
  done;
  !acc /. float_of_int n

(* Smooth minimum of two dB-domain quantities: combines the two
   compression mechanisms without a kink across the knob sweep. *)
let soft_min_db a b =
  -10.0 *. log10 ((10.0 ** (-.a /. 10.0)) +. (10.0 ** (-.b /. 10.0)))

(* The RF front-end operating state of one (state, variation sample):
   tail bias, RF-pair and switch-quad operating points, and the
   cascode-node pole — shared between the scalar PoI evaluation and the
   multi-frequency RF transfer curve. *)
type rf_front = {
  fr_gl : Process.global;
  fr_i_tail : float;
  fr_op_rf1 : Mosfet.op_point;
  fr_op_rf2 : Mosfet.op_point;
  fr_gm_rf : float;
  fr_sw_ops : Mosfet.op_point array;
  fr_overlap : float;
  fr_eta_sw : float;
  fr_c_node : float;
  fr_gm_sw : float;
  fr_pole_att : float;
}

let rf_front proc ~state (x : Vec.t) =
  assert (state >= 0 && state < n_states);
  let gl = Process.global_of proc x in
  let mm d = Process.mismatch_of proc x d in
  (* --- Tail current from the bias chain + tail-device mismatch. --- *)
  let bias_chain_err =
    mean_over (fun d -> mirror_gm_over_id *. (mm d).Process.m_dvth)
      (n_core + n_lo_buffer) n_bias_chain
  in
  let mmt = mm 6 in
  let rbias_rel = Process.resistor_var proc x 2 in
  let i_tail =
    nominal_tail
    *. (1.0 -. gl.Process.drsheet_rel -. rbias_rel)
    *. (1.0 +. bias_chain_err)
    *. (1.0
       +. mmt.Process.m_dbeta_rel
       +. (mirror_gm_over_id *. mmt.Process.m_dvth))
  in
  let i_tail = Float.max i_tail 2e-4 in
  (* --- RF pair operating point (each side carries I_tail / 2). --- *)
  let mm_rf1 = mm 0 and mm_rf2 = mm 1 in
  let inst_rf1 = Mosfet.instantiate Mosfet.nmos_32nm geom_rf gl mm_rf1 in
  let inst_rf2 = Mosfet.instantiate Mosfet.nmos_32nm geom_rf gl mm_rf2 in
  let op_rf1 = Mosfet.op_at_current inst_rf1 ~id:(i_tail /. 2.0) in
  let op_rf2 = Mosfet.op_at_current inst_rf2 ~id:(i_tail /. 2.0) in
  let gm_rf = 0.5 *. (op_rf1.Mosfet.gm +. op_rf2.Mosfet.gm) in
  (* --- Switching quad: overdrive sets commutation sharpness. --- *)
  let sw_ops =
    Array.init 4 (fun i ->
        let inst = Mosfet.instantiate Mosfet.nmos_32nm geom_sw gl (mm (2 + i)) in
        Mosfet.op_at_current inst ~id:(i_tail /. 2.0))
  in
  let vov_sw =
    Array.fold_left (fun acc (op : Mosfet.op_point) -> acc +. op.Mosfet.vov) 0.0 sw_ops
    /. 4.0
  in
  (* Fraction of the LO period spent with both switches on. *)
  let overlap = Float.min 0.45 (sqrt 2.0 *. vov_sw /. (Float.pi *. lo_amplitude)) in
  let eta_sw = 1.0 -. overlap in
  (* --- Cascode-node pole. --- *)
  let c_node =
    op_rf1.Mosfet.cgd
    +. (2.0 *. sw_ops.(0).Mosfet.cgs)
    +. (60e-15 *. (1.0 +. gl.Process.dcpar_rel))
  in
  let gm_sw = sw_ops.(0).Mosfet.gm in
  let pole_att = 1.0 /. sqrt (1.0 +. ((omega0 *. c_node /. gm_sw) ** 2.0)) in
  {
    fr_gl = gl;
    fr_i_tail = i_tail;
    fr_op_rf1 = op_rf1;
    fr_op_rf2 = op_rf2;
    fr_gm_rf = gm_rf;
    fr_sw_ops = sw_ops;
    fr_overlap = overlap;
    fr_eta_sw = eta_sw;
    fr_c_node = c_node;
    fr_gm_sw = gm_sw;
    fr_pole_att = pole_att;
  }

let evaluate_raw proc ~state (x : Vec.t) =
  let fr = rf_front proc ~state x in
  let gl = fr.fr_gl
  and i_tail = fr.fr_i_tail
  and op_rf1 = fr.fr_op_rf1
  and op_rf2 = fr.fr_op_rf2
  and gm_rf = fr.fr_gm_rf
  and sw_ops = fr.fr_sw_ops
  and overlap = fr.fr_overlap
  and eta_sw = fr.fr_eta_sw
  and pole_att = fr.fr_pole_att in
  (* --- Loads: R-DAC with sheet and local mismatch; decaps load the
     IF node only weakly (ignored for gain at low IF). --- *)
  let rl_nominal = Knob.value knobs state in
  let rl1 =
    rl_nominal *. (1.0 +. gl.Process.drsheet_rel)
    *. (1.0 +. Process.resistor_var proc x 0)
  in
  let rl2 =
    rl_nominal *. (1.0 +. gl.Process.drsheet_rel)
    *. (1.0 +. Process.resistor_var proc x 1)
  in
  let rl_eff = 0.5 *. (rl1 +. rl2) in
  (* --- Conversion gain (RF gate voltage → differential IF). --- *)
  let conversion_gain = 2.0 /. Float.pi *. gm_rf *. rl_eff *. eta_sw *. pole_att in
  let vg_db = Units.db_of_voltage_ratio (Float.max conversion_gain 1e-9) in
  (* --- SSB noise figure.  All terms are output-referred PSDs divided
     by the source contribution (4kT·Rs through the signal path); the
     image band doubles the source term's denominator share. --- *)
  let source_out = conversion_gain ** 2.0 *. Units.four_kt *. rsource in
  let rf_noise =
    (Mosfet.thermal_noise_psd op_rf1 +. Mosfet.thermal_noise_psd op_rf2)
    *. ((rl_eff *. eta_sw *. pole_att *. 2.0 /. Float.pi) ** 2.0)
  in
  let switch_noise =
    (* Switches contribute only during overlap. *)
    4.0 *. Mosfet.thermal_noise_psd sw_ops.(0) *. overlap *. (rl_eff ** 2.0)
  in
  let load_noise = 2.0 *. Units.four_kt *. rl_eff in
  let lo_buffer_noise =
    (* Aggregated LO-chain phase noise floor, modulated by γ spread. *)
    2.0e-18 *. (1.0 +. gl.Process.dgamma_rel) *. (rl_eff /. 500.0) ** 2.0
  in
  let total_excess = rf_noise +. switch_noise +. load_noise +. lo_buffer_noise in
  (* SSB: source noise is received in the signal band only, while the
     mixer folds its own noise from both bands → factor 2 on excess,
     plus the image of the source itself. *)
  let noise_factor = 2.0 +. (2.0 *. total_excess /. source_out) in
  let nf_db = 10.0 *. log10 noise_factor in
  (* --- Input 1 dB compression: weak nonlinearity vs output clipping. --- *)
  let g3_eff =
    (* Differential pair: even orders cancel; third order survives. *)
    op_rf1.Mosfet.gm3 +. op_rf2.Mosfet.gm3
  in
  let iip3_weak =
    Nonlin.iip3_dbm ~gm:(2.0 *. gm_rf)
      ~gm3:(if abs_float g3_eff < 1e-6 then 1e-6 else g3_eff)
      ~zs_mag:0.0 ~vgs_per_vsource:0.5 ~rsource
  in
  let p1db_weak = Nonlin.p1db_from_iip3_dbm iip3_weak in
  let v_clip = Float.min (i_tail *. rl_eff) supply_headroom in
  let p1db_clip =
    Nonlin.compression_limited_p1db_dbm ~vlimit:v_clip
      ~gain_v:(conversion_gain *. 0.5) ~rsource
  in
  let i1dbcp_dbm = soft_min_db p1db_weak p1db_clip in
  {
    tail_current = i_tail;
    gm_rf;
    load_ohms = rl_eff;
    conversion_gain;
    nf_db;
    vg_db;
    i1dbcp_dbm;
  }

(* RF-path small-signal netlist: the 50 Ω source driving the RF pair's
   gate capacitance, the pair's transconductance into the cascode
   (switch-quad source) node, which the quad loads with its ≈1/gm
   input conductance plus the node capacitance.  Its 2.4 GHz roll-off
   is exactly the [pole_att] factor the scalar PoIs fold in; the curve
   exposes the whole transfer.  One netlist per sample serves the full
   sweep through {!Mna.ac_sweep}. *)
let rf_netlist fr =
  let ckt = Mna.create () in
  let n_rf = Mna.fresh_node ckt "rf" in
  let n_x = Mna.fresh_node ckt "casc" in
  Mna.resistor ckt n_rf Mna.ground rsource;
  Mna.capacitor ckt n_rf Mna.ground
    (fr.fr_op_rf1.Mosfet.cgs +. fr.fr_op_rf2.Mosfet.cgs);
  Mna.vccs ckt ~out_pos:n_x ~out_neg:Mna.ground ~ctrl_pos:n_rf
    ~ctrl_neg:Mna.ground ~gm:fr.fr_gm_rf;
  Mna.conductance ckt n_x Mna.ground fr.fr_gm_sw;
  Mna.capacitor ckt n_x Mna.ground fr.fr_c_node;
  (ckt, n_rf, n_x)

(* Norton drive of the source EMF, referenced to the matched input
   voltage (EMF/2), like the LNA's gain convention. *)
let rf_gain_db analysis ~n_rf ~n_x =
  let sol = Mna.solve_injection analysis ~pos:n_rf ~neg:Mna.ground in
  let v_x = Complex.norm (Mna.voltage sol n_x) /. rsource in
  Units.db_of_voltage_ratio (2.0 *. Float.max v_x 1e-12)

let rf_gain_curve_of proc ~state x ~freqs =
  let fr = rf_front proc ~state x in
  let ckt, n_rf, n_x = rf_netlist fr in
  Array.map (fun a -> rf_gain_db a ~n_rf ~n_x) (Mna.ac_sweep ckt ~freqs)

let rf_gain_curve_naive_of proc ~state x ~freqs =
  Array.map
    (fun f ->
      let fr = rf_front proc ~state x in
      let ckt, n_rf, n_x = rf_netlist fr in
      rf_gain_db (Mna.ac ckt ~freq:f) ~n_rf ~n_x)
    freqs

let create () =
  let proc = Process.create ~n_resistor_vars device_specs in
  assert (Process.dim proc = n_process_variables);
  let evaluate ~state x =
    let r = evaluate_raw proc ~state x in
    [| r.nf_db; r.vg_db; r.i1dbcp_dbm |]
  in
  {
    Testbench.name = "mixer";
    process = proc;
    knobs;
    poi_names = [| "NF"; "VG"; "I1dBCP" |];
    poi_units = [| "dB"; "dB"; "dBm" |];
    evaluate;
    curve = Some (fun ~state x ~freqs -> rf_gain_curve_of proc ~state x ~freqs);
    (* 17.20 h for 1120 transistor-level samples (paper, Table 2). *)
    seconds_per_sample = 17.20 *. 3600.0 /. 1120.0;
  }

let evaluate_internals tb ~state x = evaluate_raw tb.Testbench.process ~state x

let rf_gain_curve tb ~state x ~freqs =
  rf_gain_curve_of tb.Testbench.process ~state x ~freqs

let rf_gain_curve_naive tb ~state x ~freqs =
  rf_gain_curve_naive_of tb.Testbench.process ~state x ~freqs
