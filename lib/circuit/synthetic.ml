open Cbmf_linalg
open Cbmf_parallel
open Cbmf_model
module Rng = Cbmf_prob.Rng
module Term = Cbmf_basis.Term

type spec = {
  k : int;
  m : int;
  d : int;
  active_per_state : int;
  rho : float;
  noise_sigma : float;
  density : float;
  seed : int;
}

let default_spec =
  {
    k = 8;
    m = 41;
    d = 40;
    active_per_state = 5;
    rho = 0.9;
    noise_sigma = 0.05;
    density = 0.2;
    seed = 1;
  }

let validate_spec s =
  if s.k < 1 then Error "k must be >= 1"
  else if s.d < 1 then Error "d must be >= 1"
  else if s.m < 2 then Error "m must be >= 2"
  else if s.m > (2 * s.d) + 1 then Error "m must be <= 2d+1"
  else if s.active_per_state < 1 || s.active_per_state > s.m - 1 then
    Error "active_per_state must be in [1, m-1]"
  else if not (Float.is_finite s.rho) || s.rho < 0.0 || s.rho >= 1.0 then
    Error "rho must be in [0, 1)"
  else if not (Float.is_finite s.noise_sigma) || s.noise_sigma < 0.0 then
    Error "noise_sigma must be >= 0"
  else if not (Float.is_finite s.density) || s.density < 0.0 || s.density > 1.0
  then Error "density must be in [0, 1]"
  else Ok ()

let validate_spec_exn s =
  match validate_spec s with
  | Ok () -> ()
  | Error e -> invalid_arg ("Synthetic: invalid spec: " ^ e)

let spec_to_string s =
  Printf.sprintf "k=%d;m=%d;d=%d;active=%d;rho=%h;noise=%h;density=%h;seed=%d"
    s.k s.m s.d s.active_per_state s.rho s.noise_sigma s.density s.seed

let spec_of_string str =
  let s =
    try
      Scanf.sscanf str "k=%d;m=%d;d=%d;active=%d;rho=%h;noise=%h;density=%h;seed=%d"
        (fun k m d active_per_state rho noise_sigma density seed ->
          { k; m; d; active_per_state; rho; noise_sigma; density; seed })
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      invalid_arg ("Synthetic.spec_of_string: malformed spec: " ^ str)
  in
  validate_spec_exn s;
  s

(* --- Derived streams ------------------------------------------------

   Every stochastic component reads its own [Rng.derive]d stream,
   addressed by (spec seed, salt, state) as the base and the sample
   index within the stream — materializable in any order, so pool
   fan-out and prefix nesting are bit-exact by construction. *)

let salt_truth = 0
let salt_train = 1
let salt_test = 2
let salt_batch = 3
let salt_cov = 4
let salt_sim = 5
let salt_cand = 6

let base_for spec ~salt s =
  let open Int64 in
  add
    (mul (of_int spec.seed) 0x9E3779B97F4A7C15L)
    (add (mul (of_int salt) 0xBF58476D1CE4E5B9L) (of_int s))

let stream spec ~salt s ~index = Rng.derive (base_for spec ~salt s) ~index

(* --- SPD covariance factory ---------------------------------------- *)

let rand_cov ~rng ~dim ~density ~shape =
  if dim < 1 then invalid_arg "Synthetic.rand_cov: dim must be >= 1";
  if density < 0.0 || density > 1.0 then
    invalid_arg "Synthetic.rand_cov: density must be in [0, 1]";
  if not (shape > 0.0) then invalid_arg "Synthetic.rand_cov: shape must be > 0";
  if density = 0.0 then Mat.identity dim
  else begin
    let g =
      Mat.init dim dim (fun _ _ ->
          if Rng.float rng < density then Rng.gaussian rng else 0.0)
    in
    let s = Mat.gram g in
    let mean_diag =
      let tr = Mat.trace s /. float_of_int dim in
      if tr > 0.0 then tr else 1.0
    in
    Mat.add_diag_inplace s (shape *. mean_diag);
    (* Normalize to unit diagonal (a congruence, so SPD is preserved). *)
    let inv_sd = Array.init dim (fun i -> 1.0 /. sqrt (Mat.get s i i)) in
    Mat.mapi (fun i j x -> x *. inv_sd.(i) *. inv_sd.(j)) s
  end

type device_cov =
  | Diagonal of float array
  | Dense of Mat.t
  | Low_rank of { factor : Mat.t; noise : float array }

let dense_threshold = 512

let low_rank_r = 16

let device_cov_of_spec spec =
  let rng = stream spec ~salt:salt_cov 0 ~index:0 in
  if spec.density = 0.0 then Diagonal (Array.make spec.d 1.0)
  else if spec.d <= dense_threshold then begin
    let sigma = rand_cov ~rng ~dim:spec.d ~density:spec.density ~shape:2.0 in
    let f = Chol.factorize_with_retry sigma in
    Dense (Chol.lower f)
  end
  else begin
    let r = low_rank_r in
    let scale = 1.0 /. sqrt (float_of_int r) in
    let factor =
      Mat.init spec.d r (fun _ _ ->
          if Rng.float rng < spec.density then scale *. Rng.gaussian rng
          else 0.0)
    in
    Low_rank { factor; noise = Array.make spec.d 1.0 }
  end

let draw_x device rng =
  match device with
  | Diagonal v ->
      Array.init (Array.length v) (fun i -> sqrt v.(i) *. Rng.gaussian rng)
  | Dense l ->
      let d = l.Mat.rows in
      let z = Rng.gaussian_vector rng d in
      (* Forward substitution against the lower-triangular factor:
         x = L z, touching only the nonzero triangle. *)
      let x = Array.make d 0.0 in
      let data = l.Mat.data in
      for i = 0 to d - 1 do
        let off = i * d in
        let acc = ref 0.0 in
        for j = 0 to i do
          acc := !acc +. (data.(off + j) *. z.(j))
        done;
        x.(i) <- !acc
      done;
      x
  | Low_rank { factor; noise } ->
      let d = factor.Mat.rows and r = factor.Mat.cols in
      let zr = Rng.gaussian_vector rng r in
      let zd = Rng.gaussian_vector rng d in
      let x = Mat.mat_vec factor zr in
      for i = 0 to d - 1 do
        x.(i) <- x.(i) +. (sqrt noise.(i) *. zd.(i))
      done;
      x

(* --- Ground truth --------------------------------------------------- *)

type t = {
  spec : spec;
  terms : Term.t array;
  support : int array;
  lambda : float array;
  coeffs : Mat.t;
  r : Mat.t;
  device : device_cov;
}

(* R(ρ)[i,j] = ρ^|i−j| — eq. 32's decay model (same parameterization as
   [Cbmf_core.Prior.r_of_r0]; re-stated here because the generator sits
   below the fitting layer). *)
let r_of_rho ~k ~rho =
  Mat.init k k (fun i j -> rho ** float_of_int (abs (i - j)))

let terms_of_spec spec =
  Array.init spec.m (fun j ->
      if j = 0 then Term.Constant
      else if j <= spec.d then Term.Linear (j - 1)
      else Term.Square (j - spec.d - 1))

let pick_support spec rng =
  let a = spec.active_per_state in
  let chosen = Hashtbl.create (2 * a) in
  let out = Array.make a 0 in
  let count = ref 0 in
  while !count < a do
    let j = 1 + Rng.int rng (spec.m - 1) in
    if not (Hashtbl.mem chosen j) then begin
      Hashtbl.add chosen j ();
      out.(!count) <- j;
      incr count
    end
  done;
  Array.sort compare out;
  out

let truth ?(per_state_drop = 0.0) spec =
  validate_spec_exn spec;
  if
    (not (Float.is_finite per_state_drop))
    || per_state_drop < 0.0 || per_state_drop >= 1.0
  then invalid_arg "Synthetic.truth: per_state_drop must be in [0, 1)";
  let rng = stream spec ~salt:salt_truth 0 ~index:0 in
  let terms = terms_of_spec spec in
  let support = pick_support spec rng in
  let a = spec.active_per_state in
  (* Decaying template magnitudes: the first selected terms dominate,
     the tail hovers above the noise — the regime where correlation
     sharing pays. *)
  let lambda = Array.init a (fun i -> (2.25 *. (0.8 ** float_of_int i)) +. 0.05) in
  let r = r_of_rho ~k:spec.k ~rho:spec.rho in
  let lr = Chol.factorize_with_retry r in
  let coeffs = Mat.create spec.k spec.m in
  let coeff_rng = stream spec ~salt:salt_truth 1 ~index:0 in
  Array.iteri
    (fun i col ->
      let z = Rng.gaussian_vector coeff_rng spec.k in
      let alpha = Chol.sample_transform lr z in
      let amp = sqrt lambda.(i) in
      for s = 0 to spec.k - 1 do
        let drop =
          per_state_drop > 0.0 && Rng.float coeff_rng < per_state_drop
        in
        if not drop then Mat.set coeffs s col (amp *. alpha.(s))
      done)
    support;
  let device = device_cov_of_spec spec in
  { spec; terms; support; lambda; coeffs; r; device }

let mean_at t ~state x =
  if state < 0 || state >= t.spec.k then
    invalid_arg "Synthetic.mean_at: state out of range";
  if Array.length x <> t.spec.d then
    invalid_arg "Synthetic.mean_at: input length mismatch";
  Array.fold_left
    (fun acc col ->
      acc +. (Term.eval t.terms.(col) x *. Mat.get t.coeffs state col))
    0.0 t.support

(* --- Dataset views -------------------------------------------------- *)

type corruption = {
  bad_state : int;
  bad_row : int;
  bad_col : int;
  bad_value : float;
}

let gen_state t ~salt ~n s =
  let m = t.spec.m in
  let flat = Array.make (n * m) 0.0 in
  let resp = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let rng = stream t.spec ~salt s ~index:i in
    let x = draw_x t.device rng in
    let off = i * m in
    for j = 0 to m - 1 do
      flat.(off + j) <- Term.eval t.terms.(j) x
    done;
    let mean =
      Array.fold_left
        (fun acc col -> acc +. (flat.(off + col) *. Mat.get t.coeffs s col))
        0.0 t.support
    in
    resp.(i) <- mean +. (t.spec.noise_sigma *. Rng.gaussian rng)
  done;
  (Mat.unsafe_of_flat ~rows:n ~cols:m flat, resp)

let dataset_with ~salt ?pool ?(corrupt = []) t ~n_per_state =
  if n_per_state < 1 then
    invalid_arg "Synthetic.dataset: n_per_state must be >= 1";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let states = Pool.map pool ~n:t.spec.k (gen_state t ~salt ~n:n_per_state) in
  let design = Array.map fst states in
  let response = Array.map snd states in
  List.iter
    (fun c ->
      if c.bad_state < 0 || c.bad_state >= t.spec.k then
        invalid_arg "Synthetic.dataset: corruption state out of range";
      if c.bad_row < 0 || c.bad_row >= n_per_state then
        invalid_arg "Synthetic.dataset: corruption row out of range";
      if c.bad_col < -1 || c.bad_col >= t.spec.m then
        invalid_arg "Synthetic.dataset: corruption column out of range";
      if c.bad_col = -1 then response.(c.bad_state).(c.bad_row) <- c.bad_value
      else Mat.set design.(c.bad_state) c.bad_row c.bad_col c.bad_value)
    corrupt;
  Dataset.create ~design ~response

let dataset ?pool ?corrupt t ~n_per_state =
  dataset_with ~salt:salt_train ?pool ?corrupt t ~n_per_state

let test_dataset ?pool t ~n_per_state =
  dataset_with ~salt:salt_test ?pool t ~n_per_state

(* --- Per-sample simulation oracle -----------------------------------
   The acquisition loop asks for one response at a time, at an x it
   chose — so the noise cannot ride on the same stream as the x draw
   (the loop's draws are not the dataset's).  Each (state, index) owns
   its own derived noise stream: simulating the same index twice gives
   the same answer, indices can be materialized in any order, and a
   budget-B run's draws are exactly the prefix of a budget-B′>B run's,
   like the dataset views. *)

let simulate t ~state ~index x =
  if index < 0 then invalid_arg "Synthetic.simulate: index must be >= 0";
  let mean = mean_at t ~state x in
  let rng = stream t.spec ~salt:salt_sim state ~index in
  mean +. (t.spec.noise_sigma *. Rng.gaussian rng)

(* Candidate pools for acquisition: [n] device draws addressed by
   (round, i) — every candidate owns its own stream, so pools of
   different sizes nest as prefixes and rounds never overlap. *)
let candidate_xs t ~round ~n =
  if round < 0 then invalid_arg "Synthetic.candidate_xs: round must be >= 0";
  if n < 1 then invalid_arg "Synthetic.candidate_xs: n must be >= 1";
  Array.init n (fun i ->
      let rng = stream t.spec ~salt:salt_cand round ~index:i in
      draw_x t.device rng)

(* --- Serving-engine stress inputs ----------------------------------- *)

let batch_inputs t ~salt ~n =
  if n < 1 then invalid_arg "Synthetic.batch_inputs: n must be >= 1";
  let d = t.spec.d in
  let flat = Array.make (n * d) 0.0 in
  for i = 0 to n - 1 do
    let rng = stream t.spec ~salt:(salt_batch + (salt * 16)) 0 ~index:i in
    let x = draw_x t.device rng in
    Array.blit x 0 flat (i * d) d
  done;
  let states = Array.init n (fun i -> i mod t.spec.k) in
  (Mat.unsafe_of_flat ~rows:n ~cols:d flat, states)

let posterior_cov_blocks t =
  let a = t.spec.active_per_state in
  let scale = Float.max t.spec.noise_sigma 1e-2 in
  let density = Float.max t.spec.density 0.1 in
  Array.init t.spec.k (fun s ->
      let rng = stream t.spec ~salt:salt_cov (s + 1) ~index:0 in
      let c = rand_cov ~rng ~dim:a ~density ~shape:4.0 in
      Mat.scale (scale *. scale) c)
