(** Tunable 2.4 GHz down-conversion mixer (Gilbert cell).

    Mirrors the paper's second example: 1303 process variables
    (8 inter-die + 4 × 321 devices + 11 resistor-mismatch variables)
    and 32 states implemented as two switched (R-DAC) load resistors.
    PoIs: SSB noise figure (dB), conversion voltage gain (dB) and
    input-referred 1 dB compression point (dBm).

    A commutating mixer is periodically time-varying, so instead of an
    LTI MNA solve the testbench uses the standard behavioural
    conversion-gain/noise equations of the Gilbert cell, with every
    coefficient (gm, γ, overdrives, capacitances) taken from the
    process-perturbed device model — the same physical pathway from
    variation vector to performance as the LNA, without the LTI
    restriction. *)

val n_process_variables : int
(** 1303, as in the paper. *)

val n_states : int
(** 32. *)

val create : unit -> Testbench.t

type internals = {
  tail_current : float;
  gm_rf : float;
  load_ohms : float;  (** effective single-ended load of this state *)
  conversion_gain : float;  (** linear, from RF gate voltage to IF out *)
  nf_db : float;
  vg_db : float;
  i1dbcp_dbm : float;
}

val evaluate_internals : Testbench.t -> state:int -> Cbmf_linalg.Vec.t -> internals

val rf_gain_curve :
  Testbench.t ->
  state:int ->
  Cbmf_linalg.Vec.t ->
  freqs:float array ->
  float array
(** RF front-end transfer (dB) at every frequency of the sweep: the
    source driving the RF pair's gate capacitance and transconductance
    into the switch-quad source node, whose 2.4 GHz roll-off is the
    [pole_att] factor inside the scalar PoIs.  The sample's netlist is
    built and split-stamped once ({!Mna.ac_sweep}).  This is the
    function behind the testbench's [curve] field.  Only valid on
    testbenches built by {!create}. *)

val rf_gain_curve_naive :
  Testbench.t ->
  state:int ->
  Cbmf_linalg.Vec.t ->
  freqs:float array ->
  float array
(** Reference path for {!rf_gain_curve}: rebuilds the netlist and runs
    a full {!Mna.ac} stamp + factorization per frequency.
    Bit-identical results; kept as oracle and bench baseline. *)
