open Cbmf_linalg

let n_states = 32

let f0 = 2.4e9

let omega0 = 2.0 *. Float.pi *. f0

let rsource = 50.0

(* Device roster: 3 core transistors + 311 periphery = 314 devices,
   hence 8 + 4·314 = 1264 variation variables. *)
let n_core = 3

let n_mirror_legs = 64

let n_bias_chain = 64

let n_decap = 183

let n_devices = n_core + n_mirror_legs + n_bias_chain + n_decap

let n_process_variables = Process.n_globals + (Process.params_per_device * n_devices)

let () = assert (n_process_variables = 1264)

(* Core geometries (W × L in meters). *)
let geom_m1 = { Mosfet.w = 64e-6; l = 32e-9 }

let geom_m2 = { Mosfet.w = 64e-6; l = 32e-9 }

let geom_mb = { Mosfet.w = 16e-6; l = 32e-9 }

let device_specs =
  let core =
    [| { Process.dev_name = "M1"; dev_w = geom_m1.Mosfet.w; dev_l = geom_m1.Mosfet.l };
       { Process.dev_name = "M2"; dev_w = geom_m2.Mosfet.w; dev_l = geom_m2.Mosfet.l };
       { Process.dev_name = "MB"; dev_w = geom_mb.Mosfet.w; dev_l = geom_mb.Mosfet.l } |]
  in
  let leg i =
    { Process.dev_name = Printf.sprintf "MLEG%d" i; dev_w = 2e-6; dev_l = 100e-9 }
  in
  let bias i =
    { Process.dev_name = Printf.sprintf "MBIAS%d" i; dev_w = 1e-6; dev_l = 100e-9 }
  in
  let decap i =
    { Process.dev_name = Printf.sprintf "MCAP%d" i; dev_w = 5e-6; dev_l = 1e-6 }
  in
  Array.concat
    [ core;
      Array.init n_mirror_legs leg;
      Array.init n_bias_chain bias;
      Array.init n_decap decap ]

(* Fixed passives. *)
let inductance_ls = 0.9e-9

let capacitance_cex = 500e-15 (* explicit gate-source capacitor for matching *)

let inductance_ld = 3.0e-9

let tank_q = 12.0

let resistance_rp = tank_q *. omega0 *. inductance_ld

(* Nominal decap loading at the output node: each decap/ESD device
   contributes ~0.4 fF of junction capacitance. *)
let decap_unit_c = 0.4e-15

let decap_total_c = float_of_int n_decap *. decap_unit_c

(* Input-device nominal Cgs (for tuning Lg once, at design time). *)
let nominal_cgs1 =
  let inst = Mosfet.nominal Mosfet.nmos_32nm geom_m1 in
  let op = Mosfet.op_at_current inst ~id:3e-3 in
  op.Mosfet.cgs

let inductance_lg =
  (1.0 /. (omega0 *. omega0 *. (nominal_cgs1 +. capacitance_cex)))
  -. inductance_ls

(* Output tank capacitor tuned at design time, leaving room for the
   device and decap parasitics.  The 7 % detune keeps the operating
   point off the exact resonance peak, where the gain would be
   first-order insensitive to capacitance spread (a real tank is never
   perfectly centered either). *)
let tank_c =
  let c =
    (0.93 /. (omega0 *. omega0 *. inductance_ld)) -. decap_total_c
  in
  assert (c > 0.0);
  c

(* Knob: mirrored bias current, geometric 2.5→10 mA over 32 codes —
   strong inversion throughout, past the gm3 sign change. *)
let knobs = Knob.geometric_sweep ~n_states ~lo:2.5e-3 ~hi:10.0e-3

(* gm/Id of the mirror devices, used to translate Vth mismatch into
   current error (moderate inversion). *)
let mirror_gm_over_id = 8.0

type internals = {
  bias_current : float;
  gm1 : float;
  nf_db : float;
  vg_db : float;
  iip3_dbm : float;
}

let mean_over f lo n =
  let acc = ref 0.0 in
  for i = lo to lo + n - 1 do
    acc := !acc +. f i
  done;
  !acc /. float_of_int n

(* The small-signal model of one (state, variation sample): the
   operating points, the stamped netlist, and everything the gain /
   noise / IIP3 blocks need downstream.  Built once per sample and
   shared between the single-frequency PoI evaluation and the
   multi-frequency gain curve, which sweeps the same netlist through
   {!Mna.ac_sweep} instead of rebuilding it per point. *)
type small_signal = {
  ckt : Mna.t;
  n_in : Mna.node;
  n_g : Mna.node;
  n_s : Mna.node;
  n_x : Mna.node;
  n_out : Mna.node;
  ss_op1 : Mosfet.op_point;
  ss_op2 : Mosfet.op_point;
  ss_rp : float;  (* tank loss resistor, with sheet spread *)
  ss_id1 : float;  (* mirrored drain current of the input device *)
}

let small_signal proc ~state (x : Vec.t) =
  assert (state >= 0 && state < n_states);
  let gl = Process.global_of proc x in
  let mm d = Process.mismatch_of proc x d in
  let mm1 = mm 0 and mm2 = mm 1 and mmb = mm 2 in
  (* --- Bias: reference current, degraded by the bias chain and sheet
     resistance, then mirrored with MB→M1 mismatch. --- *)
  let bias_chain_err =
    mean_over
      (fun d -> mirror_gm_over_id *. (mm d).Process.m_dvth)
      (n_core + n_mirror_legs) n_bias_chain
  in
  let mirror_leg_err =
    mean_over
      (fun d -> mirror_gm_over_id *. (mm d).Process.m_dvth)
      n_core n_mirror_legs
  in
  let i_ref =
    Knob.value knobs state
    *. (1.0 -. gl.Process.drsheet_rel)
    *. (1.0 +. bias_chain_err)
  in
  let id1 =
    i_ref
    *. (1.0 +. (mm1.Process.m_dbeta_rel -. mmb.Process.m_dbeta_rel))
    *. (1.0
       +. (mirror_gm_over_id *. (mmb.Process.m_dvth -. mm1.Process.m_dvth))
       +. mirror_leg_err)
  in
  let id1 = Float.max id1 1e-5 in
  (* --- Device operating points. --- *)
  let inst1 = Mosfet.instantiate Mosfet.nmos_32nm geom_m1 gl mm1 in
  let inst2 = Mosfet.instantiate Mosfet.nmos_32nm geom_m2 gl mm2 in
  let op1 = Mosfet.op_at_current inst1 ~id:id1 in
  let op2 = Mosfet.op_at_current inst2 ~id:id1 in
  (* --- Output-node parasitics from the decap/ESD periphery. --- *)
  let decap_c =
    let base = n_core + n_mirror_legs + n_bias_chain in
    let acc = ref 0.0 in
    for d = base to base + n_decap - 1 do
      let m = mm d in
      acc := !acc +. (decap_unit_c *. (1.0 +. m.Process.m_dw_rel))
    done;
    !acc *. (1.0 +. gl.Process.dcpar_rel)
  in
  (* --- Small-signal netlist. --- *)
  let ckt = Mna.create () in
  let n_in = Mna.fresh_node ckt "in" in
  let n_g = Mna.fresh_node ckt "gate" in
  let n_s = Mna.fresh_node ckt "src" in
  let n_x = Mna.fresh_node ckt "casc" in
  let n_out = Mna.fresh_node ckt "out" in
  Mna.resistor ckt n_in Mna.ground rsource;
  Mna.inductor ckt n_in n_g inductance_lg;
  Mna.capacitor ckt n_g n_s (op1.Mosfet.cgs +. capacitance_cex);
  Mna.capacitor ckt n_g n_x op1.Mosfet.cgd;
  Mna.vccs ckt ~out_pos:n_x ~out_neg:n_s ~ctrl_pos:n_g ~ctrl_neg:n_s
    ~gm:op1.Mosfet.gm;
  Mna.conductance ckt n_x n_s op1.Mosfet.gds;
  Mna.inductor ckt n_s Mna.ground inductance_ls;
  (* Cascode device, gate at AC ground. *)
  Mna.capacitor ckt n_x Mna.ground op2.Mosfet.cgs;
  Mna.vccs ckt ~out_pos:n_out ~out_neg:n_x ~ctrl_pos:Mna.ground ~ctrl_neg:n_x
    ~gm:op2.Mosfet.gm;
  Mna.conductance ckt n_out n_x op2.Mosfet.gds;
  Mna.capacitor ckt n_out Mna.ground op2.Mosfet.cgd;
  (* Output tank (loss resistor carries the sheet-resistance spread). *)
  Mna.inductor ckt n_out Mna.ground inductance_ld;
  Mna.capacitor ckt n_out Mna.ground
    ((tank_c *. (1.0 +. gl.Process.dcpar_rel)) +. decap_c);
  let rp = resistance_rp *. (1.0 +. (0.5 *. gl.Process.drsheet_rel)) in
  Mna.resistor ckt n_out Mna.ground rp;
  {
    ckt;
    n_in;
    n_g;
    n_s;
    n_x;
    n_out;
    ss_op1 = op1;
    ss_op2 = op2;
    ss_rp = rp;
    ss_id1 = id1;
  }

(* Gain at one factorized frequency point: Norton drive of the source
   EMF (unit EMF → current 1/Rs into the input node), referenced to the
   matched input voltage (EMF/2). *)
let gain_db ss analysis =
  let sol = Mna.solve_injection analysis ~pos:ss.n_in ~neg:Mna.ground in
  let scale = 1.0 /. rsource in
  let v_out = Complex.norm (Mna.voltage sol ss.n_out) *. scale in
  Units.db_of_voltage_ratio (2.0 *. Float.max v_out 1e-12)

let evaluate_raw proc ~state (x : Vec.t) =
  let ss = small_signal proc ~state x in
  let op1 = ss.ss_op1 and op2 = ss.ss_op2 in
  let analysis = Mna.ac ss.ckt ~freq:f0 in
  (* --- Gain: Norton drive of the source EMF (unit EMF → current 1/Rs
     into the input node). --- *)
  let sol = Mna.solve_injection analysis ~pos:ss.n_in ~neg:Mna.ground in
  let scale = 1.0 /. rsource in
  let v_out = Complex.norm (Mna.voltage sol ss.n_out) *. scale in
  let v_gs = Complex.norm (Mna.differential sol ss.n_g ss.n_s) *. scale in
  (* Gain referenced to the matched input voltage (EMF/2). *)
  let vg_db = Units.db_of_voltage_ratio (2.0 *. Float.max v_out 1e-12) in
  (* --- Noise figure. --- *)
  let input_source =
    Noise.resistor_source ~label:"Rs" ss.n_in Mna.ground ~r:rsource
  in
  let others =
    [ Noise.channel_source ~label:"M1" ~drain:ss.n_x ~source:ss.n_s op1;
      Noise.channel_source ~label:"M2" ~drain:ss.n_out ~source:ss.n_x op2;
      Noise.resistor_source ~label:"Rp" ss.n_out Mna.ground ~r:ss.ss_rp ]
  in
  let nf_db =
    Noise.noise_figure_db analysis ~out_pos:ss.n_out ~out_neg:Mna.ground
      ~input_source others
  in
  (* --- IIP3 from the input device's weak nonlinearity. --- *)
  let zs_mag = omega0 *. inductance_ls in
  let g3_eff =
    Nonlin.effective_gm3 ~gm:op1.Mosfet.gm ~gm2:op1.Mosfet.gm2
      ~gm3:op1.Mosfet.gm3 ~zs_mag
  in
  let iip3_dbm =
    Nonlin.iip3_dbm ~gm:op1.Mosfet.gm ~gm3:g3_eff ~zs_mag
      ~vgs_per_vsource:(Float.max v_gs 1e-9)
      ~rsource
  in
  { bias_current = ss.ss_id1; gm1 = op1.Mosfet.gm; nf_db; vg_db; iip3_dbm }

let gain_curve_of proc ~state x ~freqs =
  let ss = small_signal proc ~state x in
  Array.map (gain_db ss) (Mna.ac_sweep ss.ckt ~freqs)

(* The pre-sweep cost model: one netlist construction + one [Mna.ac]
   stamp/factorize per frequency point — what an M-point curve cost
   before {!Mna.ac_sweep} existed.  Kept as the bit-exactness oracle
   for {!gain_curve} and as the "before" baseline in the bench. *)
let gain_curve_naive_of proc ~state x ~freqs =
  Array.map
    (fun f ->
      let ss = small_signal proc ~state x in
      gain_db ss (Mna.ac ss.ckt ~freq:f))
    freqs

let create () =
  let proc = Process.create device_specs in
  assert (Process.dim proc = n_process_variables);
  let evaluate ~state x =
    let r = evaluate_raw proc ~state x in
    [| r.nf_db; r.vg_db; r.iip3_dbm |]
  in
  {
    Testbench.name = "lna";
    process = proc;
    knobs;
    poi_names = [| "NF"; "VG"; "IIP3" |];
    poi_units = [| "dB"; "dB"; "dBm" |];
    evaluate;
    curve = Some (fun ~state x ~freqs -> gain_curve_of proc ~state x ~freqs);
    (* 2.72 h for 1120 transistor-level samples (paper, Table 1). *)
    seconds_per_sample = 2.72 *. 3600.0 /. 1120.0;
  }

let evaluate_internals tb ~state x = evaluate_raw tb.Testbench.process ~state x

let gain_curve tb ~state x ~freqs =
  gain_curve_of tb.Testbench.process ~state x ~freqs

let gain_curve_naive tb ~state x ~freqs =
  gain_curve_naive_of tb.Testbench.process ~state x ~freqs
