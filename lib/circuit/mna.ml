open Cbmf_linalg

type node = int

type element =
  | Conductance of node * node * float
  | Capacitance of node * node * float
  | Inductance of node * node * float
  | Vccs of { op : node; on : node; cp : node; cn : node; gm : float }

type t = {
  mutable names : string list; (* reversed; ground excluded *)
  mutable n_nodes : int; (* including ground *)
  mutable elements : element list;
}

let create () = { names = []; n_nodes = 1; elements = [] }

let ground = 0

let fresh_node ckt name =
  let id = ckt.n_nodes in
  ckt.n_nodes <- id + 1;
  ckt.names <- name :: ckt.names;
  id

let node_count ckt = ckt.n_nodes

(* Input validation raises [Invalid_argument] naming the offending
   node/element — [assert] would vanish under [-noassert], letting
   release builds stamp garbage netlists into the MNA system. *)
let check_node ckt ~elem n =
  if n < 0 || n >= ckt.n_nodes then
    invalid_arg
      (Printf.sprintf "Mna.%s: node %d out of range [0, %d)" elem n
         ckt.n_nodes)

let check_value ~elem ~what ?(strict = false) v =
  if (not (Float.is_finite v)) || (if strict then v <= 0.0 else v < 0.0) then
    invalid_arg
      (Printf.sprintf "Mna.%s: %s %g must be %s and finite" elem what v
         (if strict then "positive" else "non-negative"))

let node_name ckt n =
  check_node ckt ~elem:"node_name" n;
  if n = 0 then "gnd" else List.nth ckt.names (ckt.n_nodes - 1 - n)

let conductance ckt a b g =
  check_node ckt ~elem:"conductance" a;
  check_node ckt ~elem:"conductance" b;
  check_value ~elem:"conductance" ~what:"conductance" g;
  ckt.elements <- Conductance (a, b, g) :: ckt.elements

let resistor ckt a b r =
  check_value ~elem:"resistor" ~what:"resistance" ~strict:true r;
  conductance ckt a b (1.0 /. r)

let capacitor ckt a b c =
  check_node ckt ~elem:"capacitor" a;
  check_node ckt ~elem:"capacitor" b;
  check_value ~elem:"capacitor" ~what:"capacitance" c;
  ckt.elements <- Capacitance (a, b, c) :: ckt.elements

let inductor ckt a b l =
  check_node ckt ~elem:"inductor" a;
  check_node ckt ~elem:"inductor" b;
  check_value ~elem:"inductor" ~what:"inductance" ~strict:true l;
  ckt.elements <- Inductance (a, b, l) :: ckt.elements

let vccs ckt ~out_pos ~out_neg ~ctrl_pos ~ctrl_neg ~gm =
  check_node ckt ~elem:"vccs" out_pos;
  check_node ckt ~elem:"vccs" out_neg;
  check_node ckt ~elem:"vccs" ctrl_pos;
  check_node ckt ~elem:"vccs" ctrl_neg;
  if not (Float.is_finite gm) then
    invalid_arg (Printf.sprintf "Mna.vccs: transconductance %g must be finite" gm);
  ckt.elements <- Vccs { op = out_pos; on = out_neg; cp = ctrl_pos; cn = ctrl_neg; gm } :: ckt.elements

let element_count ckt = List.length ckt.elements

type analysis = { lu : Clu.t; n_nodes : int }

exception Singular_circuit

(* Matrix index of a node (ground has none). *)
let idx n = n - 1

let stamp_admittance y a b (c : Complex.t) =
  if a <> ground then Cmat.add_at y (idx a) (idx a) c;
  if b <> ground then Cmat.add_at y (idx b) (idx b) c;
  if a <> ground && b <> ground then begin
    Cmat.add_at y (idx a) (idx b) (Complex.neg c);
    Cmat.add_at y (idx b) (idx a) (Complex.neg c)
  end

let ac (ckt : t) ~freq =
  if not (Float.is_finite freq) || freq <= 0.0 then
    invalid_arg (Printf.sprintf "Mna.ac: frequency %g must be positive and finite" freq);
  let omega = 2.0 *. Float.pi *. freq in
  let n = ckt.n_nodes - 1 in
  if n <= 0 then invalid_arg "Mna.ac: circuit has no non-ground nodes";
  let y = Cmat.create n n in
  let stamp = function
    | Conductance (a, b, g) -> stamp_admittance y a b { Complex.re = g; im = 0.0 }
    | Capacitance (a, b, c) ->
        stamp_admittance y a b { Complex.re = 0.0; im = omega *. c }
    | Inductance (a, b, l) ->
        stamp_admittance y a b { Complex.re = 0.0; im = -1.0 /. (omega *. l) }
    | Vccs { op; on; cp; cn; gm } ->
        let add i j v =
          if i <> ground && j <> ground then
            Cmat.add_at y (idx i) (idx j) { Complex.re = v; im = 0.0 }
        in
        add op cp gm;
        add op cn (-.gm);
        add on cp (-.gm);
        add on cn gm
  in
  List.iter stamp ckt.elements;
  if Cbmf_robust.Inject.fire ~site:"mna.solve" then raise Singular_circuit;
  match Clu.factorize y with
  | lu -> { lu; n_nodes = ckt.n_nodes }
  | exception Clu.Singular _ -> raise Singular_circuit

let solve_injection a ~pos ~neg =
  let n = a.n_nodes - 1 in
  let b = Cmat.vec_create n in
  if pos <> ground then Cmat.vec_add_at b (idx pos) Complex.one;
  if neg <> ground then Cmat.vec_add_at b (idx neg) { Complex.re = -1.0; im = 0.0 };
  let x = Clu.solve_vec a.lu b in
  Array.init a.n_nodes (fun i ->
      if i = 0 then Complex.zero else Cmat.vec_get x (i - 1))

let voltage sol n = sol.(n)

let differential sol p n = Complex.sub sol.(p) sol.(n)
