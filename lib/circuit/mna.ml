open Cbmf_linalg

type node = int

type element =
  | Conductance of node * node * float
  | Capacitance of node * node * float
  | Inductance of node * node * float
  | Vccs of { op : node; on : node; cp : node; cn : node; gm : float }

type t = {
  mutable names : string list; (* reversed; ground excluded *)
  mutable n_nodes : int; (* including ground *)
  mutable elements : element list;
}

let create () = { names = []; n_nodes = 1; elements = [] }

let ground = 0

let fresh_node ckt name =
  let id = ckt.n_nodes in
  ckt.n_nodes <- id + 1;
  ckt.names <- name :: ckt.names;
  id

let node_count ckt = ckt.n_nodes

(* Input validation raises [Invalid_argument] naming the offending
   node/element — [assert] would vanish under [-noassert], letting
   release builds stamp garbage netlists into the MNA system. *)
let check_node ckt ~elem n =
  if n < 0 || n >= ckt.n_nodes then
    invalid_arg
      (Printf.sprintf "Mna.%s: node %d out of range [0, %d)" elem n
         ckt.n_nodes)

let check_value ~elem ~what ?(strict = false) v =
  if (not (Float.is_finite v)) || (if strict then v <= 0.0 else v < 0.0) then
    invalid_arg
      (Printf.sprintf "Mna.%s: %s %g must be %s and finite" elem what v
         (if strict then "positive" else "non-negative"))

let node_name ckt n =
  check_node ckt ~elem:"node_name" n;
  if n = 0 then "gnd" else List.nth ckt.names (ckt.n_nodes - 1 - n)

let conductance ckt a b g =
  check_node ckt ~elem:"conductance" a;
  check_node ckt ~elem:"conductance" b;
  check_value ~elem:"conductance" ~what:"conductance" g;
  ckt.elements <- Conductance (a, b, g) :: ckt.elements

let resistor ckt a b r =
  check_value ~elem:"resistor" ~what:"resistance" ~strict:true r;
  conductance ckt a b (1.0 /. r)

let capacitor ckt a b c =
  check_node ckt ~elem:"capacitor" a;
  check_node ckt ~elem:"capacitor" b;
  check_value ~elem:"capacitor" ~what:"capacitance" c;
  ckt.elements <- Capacitance (a, b, c) :: ckt.elements

let inductor ckt a b l =
  check_node ckt ~elem:"inductor" a;
  check_node ckt ~elem:"inductor" b;
  check_value ~elem:"inductor" ~what:"inductance" ~strict:true l;
  ckt.elements <- Inductance (a, b, l) :: ckt.elements

let vccs ckt ~out_pos ~out_neg ~ctrl_pos ~ctrl_neg ~gm =
  check_node ckt ~elem:"vccs" out_pos;
  check_node ckt ~elem:"vccs" out_neg;
  check_node ckt ~elem:"vccs" ctrl_pos;
  check_node ckt ~elem:"vccs" ctrl_neg;
  if not (Float.is_finite gm) then
    invalid_arg (Printf.sprintf "Mna.vccs: transconductance %g must be finite" gm);
  ckt.elements <- Vccs { op = out_pos; on = out_neg; cp = ctrl_pos; cn = ctrl_neg; gm } :: ckt.elements

let element_count ckt = List.length ckt.elements

type analysis = { lu : Clu.t; n_nodes : int }

exception Singular_circuit

(* Matrix index of a node (ground has none). *)
let idx n = n - 1

let stamp_admittance y a b (c : Complex.t) =
  if a <> ground then Cmat.add_at y (idx a) (idx a) c;
  if b <> ground then Cmat.add_at y (idx b) (idx b) c;
  if a <> ground && b <> ground then begin
    Cmat.add_at y (idx a) (idx b) (Complex.neg c);
    Cmat.add_at y (idx b) (idx a) (Complex.neg c)
  end

let ac (ckt : t) ~freq =
  if not (Float.is_finite freq) || freq <= 0.0 then
    invalid_arg (Printf.sprintf "Mna.ac: frequency %g must be positive and finite" freq);
  let omega = 2.0 *. Float.pi *. freq in
  let n = ckt.n_nodes - 1 in
  if n <= 0 then invalid_arg "Mna.ac: circuit has no non-ground nodes";
  let y = Cmat.create n n in
  let stamp = function
    | Conductance (a, b, g) -> stamp_admittance y a b { Complex.re = g; im = 0.0 }
    | Capacitance (a, b, c) ->
        stamp_admittance y a b { Complex.re = 0.0; im = omega *. c }
    | Inductance (a, b, l) ->
        stamp_admittance y a b { Complex.re = 0.0; im = -1.0 /. (omega *. l) }
    | Vccs { op; on; cp; cn; gm } ->
        let add i j v =
          if i <> ground && j <> ground then
            Cmat.add_at y (idx i) (idx j) { Complex.re = v; im = 0.0 }
        in
        add op cp gm;
        add op cn (-.gm);
        add on cp (-.gm);
        add on cn gm
  in
  List.iter stamp ckt.elements;
  if Cbmf_robust.Inject.fire ~site:"mna.solve" then raise Singular_circuit;
  match Clu.factorize y with
  | lu -> { lu; n_nodes = ckt.n_nodes }
  | exception Clu.Singular _ -> raise Singular_circuit

(* --- Split-stamp frequency sweeps -------------------------------------
   [ac] rebuilds and restamps the full nodal matrix per call; over an
   M-point sweep that repeats the element-list traversal (and, in the
   testbenches, the netlist construction feeding it) M times even
   though only the reactive stamps depend on ω.  A sweep splits the
   admittance Y(ω) = G + jωC − (j/ω)Γ once per netlist:
   – the frequency-independent plane G (conductances, VCCS) is
     accumulated into a dense real template;
   – every reactive stamp is compiled to a (slot, sign, value, kind)
     quadruple replayed per frequency as one scalar multiply-add.
   Replay preserves [ac]'s exact accumulation order within each plane,
   and the cross-plane ±0.0 contributions [ac] makes are no-ops (an
   IEEE-754 running sum that starts at +0.0 can never become -0.0, so
   adding ±0.0 to it is the identity) — the assembled matrix is
   bit-identical to the one [ac] stamps, and hence so are the
   factorization and every solve. *)

type stamp_kind = Scaled_cap | Scaled_ind

type sweep = {
  s_n : int;  (* non-ground nodes *)
  s_n_nodes : int;
  g_plane : float array;  (* n×n: the re plane of Y at any ω *)
  slots : int array;  (* flat n×n target per reactive stamp *)
  signs : float array;  (* ±1.0 (diagonal vs off-diagonal) *)
  values : float array;  (* C in farads / L in henries *)
  kinds : stamp_kind array;
}

let sweep_of (ckt : t) =
  let n = ckt.n_nodes - 1 in
  if n <= 0 then invalid_arg "Mna.ac_sweep: circuit has no non-ground nodes";
  let g = Array.make (n * n) 0.0 in
  let add_g i j v = g.((i * n) + j) <- g.((i * n) + j) +. v in
  let slots = ref []
  and signs = ref []
  and values = ref []
  and kinds = ref [] in
  let push slot sign v kind =
    slots := slot :: !slots;
    signs := sign :: !signs;
    values := v :: !values;
    kinds := kind :: !kinds
  in
  (* Same target order as [stamp_admittance]: (a,a), (b,b), (a,b), (b,a). *)
  let reactive a b v kind =
    if a <> ground then push ((idx a * n) + idx a) 1.0 v kind;
    if b <> ground then push ((idx b * n) + idx b) 1.0 v kind;
    if a <> ground && b <> ground then begin
      push ((idx a * n) + idx b) (-1.0) v kind;
      push ((idx b * n) + idx a) (-1.0) v kind
    end
  in
  let stamp = function
    | Conductance (a, b, gv) ->
        if a <> ground then add_g (idx a) (idx a) gv;
        if b <> ground then add_g (idx b) (idx b) gv;
        if a <> ground && b <> ground then begin
          add_g (idx a) (idx b) (-.gv);
          add_g (idx b) (idx a) (-.gv)
        end
    | Capacitance (a, b, c) -> reactive a b c Scaled_cap
    | Inductance (a, b, l) -> reactive a b l Scaled_ind
    | Vccs { op; on; cp; cn; gm } ->
        let add i j v =
          if i <> ground && j <> ground then add_g (idx i) (idx j) v
        in
        add op cp gm;
        add op cn (-.gm);
        add on cp (-.gm);
        add on cn gm
  in
  List.iter stamp ckt.elements;
  {
    s_n = n;
    s_n_nodes = ckt.n_nodes;
    g_plane = g;
    slots = Array.of_list (List.rev !slots);
    signs = Array.of_list (List.rev !signs);
    values = Array.of_list (List.rev !values);
    kinds = Array.of_list (List.rev !kinds);
  }

(* Sweep-path validation parity with [check_value]: every entry must be
   positive and finite, and the grid strictly increasing — messages
   name the offending entry and its index. *)
let check_freqs freqs =
  let m = Array.length freqs in
  if m = 0 then invalid_arg "Mna.ac_sweep: empty frequency array";
  Array.iteri
    (fun i f ->
      if (not (Float.is_finite f)) || f <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Mna.ac_sweep: frequency %g at index %d must be positive and \
              finite"
             f i))
    freqs;
  for i = 1 to m - 1 do
    if freqs.(i) <= freqs.(i - 1) then
      invalid_arg
        (Printf.sprintf
           "Mna.ac_sweep: frequencies must be strictly increasing (%g at \
            index %d does not exceed %g)"
           freqs.(i) i
           freqs.(i - 1))
  done

let ac_sweep (ckt : t) ~freqs =
  check_freqs freqs;
  let sw = sweep_of ckt in
  let n = sw.s_n in
  let y = Cmat.create n n in
  let yre = (y : Cmat.t).Cmat.re and yim = (y : Cmat.t).Cmat.im in
  let n_ops = Array.length sw.slots in
  Array.map
    (fun freq ->
      let omega = 2.0 *. Float.pi *. freq in
      Array.blit sw.g_plane 0 yre 0 (n * n);
      Array.fill yim 0 (n * n) 0.0;
      for p = 0 to n_ops - 1 do
        let term =
          match sw.kinds.(p) with
          | Scaled_cap -> omega *. sw.values.(p)
          | Scaled_ind -> -1.0 /. (omega *. sw.values.(p))
        in
        let s = sw.slots.(p) in
        yim.(s) <- yim.(s) +. (sw.signs.(p) *. term)
      done;
      if Cbmf_robust.Inject.fire ~site:"mna.solve" then raise Singular_circuit;
      match Clu.factorize y with
      | lu -> { lu; n_nodes = sw.s_n_nodes }
      | exception Clu.Singular _ -> raise Singular_circuit)
    freqs

let solve_injection a ~pos ~neg =
  let n = a.n_nodes - 1 in
  let b = Cmat.vec_create n in
  if pos <> ground then Cmat.vec_add_at b (idx pos) Complex.one;
  if neg <> ground then Cmat.vec_add_at b (idx neg) { Complex.re = -1.0; im = 0.0 };
  let x = Clu.solve_vec a.lu b in
  Array.init a.n_nodes (fun i ->
      if i = 0 then Complex.zero else Cmat.vec_get x (i - 1))

let voltage sol n = sol.(n)

let differential sol p n = Complex.sub sol.(p) sol.(n)
