(** Orthogonal matching pursuit — the classic single-response sparse
    regression baseline [16]. *)

open Cbmf_linalg

type result = {
  support : int array;  (** selected columns, in selection order *)
  coeffs : Vec.t;  (** length M, zeros off the support *)
}

val fit : design:Mat.t -> response:Vec.t -> n_terms:int -> result
(** Greedy selection of [n_terms] columns (capped at both the column
    and row counts), re-solving least squares on the support at every
    step. *)

val fit_with_norms :
  norms:Vec.t -> design:Mat.t -> response:Vec.t -> n_terms:int -> result
(** {!fit} for callers that already hold the design's column norms
    (e.g. via {!Dataset.column_norms}) — skips recomputing them, the
    only O(N·M) setup term the greedy loop repays per call. *)

val fit_cv :
  design:Mat.t ->
  response:Vec.t ->
  n_folds:int ->
  candidate_terms:int array ->
  result * int
(** Choose the sparsity level by cross-validation over
    [candidate_terms], then refit on all rows.  Returns the model and
    the chosen level. *)

val predict : result -> Mat.t -> Vec.t
