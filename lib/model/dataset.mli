(** Multi-state regression dataset.

    One dataset holds, for every knob state k, the design matrix
    B_k (N×M, eq. 3 of the paper) and the response vector y_k (one
    performance of interest).  All states share the same dictionary
    (column m of every B_k is the same basis function) and the same
    sample count N. *)

open Cbmf_linalg

type t = private {
  n_states : int;  (** K *)
  n_samples : int;  (** N, per state *)
  n_basis : int;  (** M *)
  design : Mat.t array;  (** B_k, N×M *)
  response : Vec.t array;  (** y_k, length N *)
  mutable norms_cache : Vec.t option array;
      (** lazily filled per-state column norms — use {!column_norms} *)
  mutable bty_cache : Vec.t option array;
      (** lazily filled per-state [B_kᵀ y_k] — use {!bty} *)
  mutable ssq_cache : Vec.t option array;
      (** lazily filled per-state raw column sums of squares — use
          {!ssq}; the exact quantity {!append_rows} carries forward *)
  mutable gram_cache : Mat.t option array;
      (** lazily filled per-state M×M [B_kᵀ B_k] — use {!gram} *)
}

val create : design:Mat.t array -> response:Vec.t array -> t
(** Validates that all states agree on N and M. *)

val append_rows : t -> design:Mat.t array -> response:Vec.t array -> t
(** [append_rows d ~design ~response] is a fresh dataset with
    [design.(k)] (n_new×M) stacked under state [k]'s rows and
    [response.(k)] appended to its responses — the streaming growth
    step of the active-learning loop.  Every cache the parent had
    already materialized is carried forward {e incrementally}: column
    sums-of-squares/norms and [Bᵀy] extend in the same ascending-row
    accumulation order a from-scratch pass uses (bit-identical
    results), and each cached Gram gains one outer product per new row
    (O(n_new·M²) instead of O(N·M²)).  Caches the parent never filled
    stay lazy.  The parent is unchanged. *)

val append_row : t -> rows:Vec.t array -> ys:float array -> t
(** One-sample-per-state convenience wrapper over {!append_rows}:
    [rows.(k)] is state [k]'s new basis row (length M), [ys.(k)] its
    response. *)

val column_norms : t -> int -> Vec.t
(** [column_norms d k] is {!Cbmf_basis.Dictionary.column_norms} of
    [d.design.(k)], computed once per design matrix and cached — the
    greedy selection loops (S-OMP, OMP, Algorithm 1) call this every
    iteration, turning an O(N·M·θ) recomputation into O(N·M).  Returns
    the cached array itself: do not mutate. *)

val bty : t -> int -> Vec.t
(** [bty d k] is [B_kᵀ y_k], cached like {!column_norms} — the
    right-hand side every support refit slices from.  Returns the
    cached array itself: do not mutate. *)

val ssq : t -> int -> Vec.t
(** [ssq d k] is the raw per-column sums of squares of [B_k], cached —
    the un-sqrt'd quantity behind {!column_norms}, kept separately so
    {!append_rows} can extend it exactly (the zero-column → 1.0
    convention in [column_norms] loses the information needed for an
    incremental update).  Returns the cached array itself: do not
    mutate. *)

val gram : t -> int -> Mat.t
(** [gram d k] is the M×M [B_kᵀ B_k], cached per state.  Only callers
    that ask pay its O(N·M²) cost; {!append_rows} then keeps it fresh
    at O(M²) per appended row.  Returns the cached matrix itself: do
    not mutate. *)

val warm_caches : t -> unit
(** Force {!column_norms} and {!bty} for every state.  Hot paths that
    fan work over a shared dataset ({!Cbmf_core.Init.run}) call this
    before the parallel region so worker domains only read. *)

val truncate_samples : t -> n:int -> t
(** Keep the first [n] samples of every state. *)

val select_rows : t -> int array array -> t
(** [select_rows d idx] keeps rows [idx.(k)] of state [k] (allows
    duplication/reordering; used by cross-validation). *)

val select_states : t -> int array -> t
(** [select_states d states] keeps only the given states, in the given
    order — the sub-problem a state cluster induces. *)

val split_fold : t -> n_folds:int -> fold:int -> t * t
(** [(train, test)] for deterministic interleaved folds: sample [i] of
    every state belongs to fold [i mod n_folds].  Interleaving keeps
    fold sizes balanced for any N. *)

type invalid_row = {
  state : int;
  row : int;
  col : int;  (** first non-finite design column, or [-1] for the response *)
}

type report = { n_rows : int; invalid : invalid_row array }

val validate : t -> (unit, report) result
(** Screen every design and response entry for NaN/Inf.  Returns a
    row-granular structured report of the offenders — one entry per
    invalid (state, row), in (state, row) order.  A dataset with even
    one non-finite entry poisons every downstream factorization, so
    {!Em.run} rejects such inputs up front. *)

val validate_exn : t -> unit
(** Like {!validate} but raises a typed
    [Cbmf_robust.Fault.Error (Non_finite _)] summarizing the report. *)

val response_norm : t -> float
(** sqrt(Σ_k ‖y_k‖²) — denominator of pooled relative errors. *)

val total_samples : t -> int
(** N·K. *)

val state_design : t -> int -> Mat.t

val state_response : t -> int -> Vec.t
