open Cbmf_linalg

let rmse ~predicted ~actual =
  assert (Array.length predicted = Array.length actual);
  assert (Array.length actual > 0);
  Vec.dist predicted actual /. sqrt (float_of_int (Array.length actual))

let relative_rms ~predicted ~actual =
  let denom = Vec.norm2 actual in
  if denom <= 0.0 then invalid_arg "Metrics.relative_rms: zero actual";
  Vec.dist predicted actual /. denom

let relative_rms_pooled pairs =
  assert (Array.length pairs > 0);
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun (predicted, actual) ->
      let d = Vec.dist predicted actual in
      num := !num +. (d *. d);
      den := !den +. Vec.norm2_sq actual)
    pairs;
  if !den <= 0.0 then invalid_arg "Metrics.relative_rms_pooled: zero actual";
  sqrt (!num /. !den)

let percent x = 100.0 *. x

let r_squared ~predicted ~actual =
  let n = Array.length actual in
  assert (n > 0 && Array.length predicted = n);
  let mean = Vec.mean actual in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    let dt = actual.(i) -. mean in
    let dr = actual.(i) -. predicted.(i) in
    ss_tot := !ss_tot +. (dt *. dt);
    ss_res := !ss_res +. (dr *. dr)
  done;
  if !ss_tot <= 0.0 then 0.0 else 1.0 -. (!ss_res /. !ss_tot)

let max_abs_error ~predicted ~actual =
  assert (Array.length predicted = Array.length actual);
  let worst = ref 0.0 in
  for i = 0 to Array.length actual - 1 do
    worst := Float.max !worst (abs_float (predicted.(i) -. actual.(i)))
  done;
  !worst

let support_precision_recall ~truth ~estimate =
  let tbl = Hashtbl.create (2 * Array.length truth) in
  Array.iter (fun j -> Hashtbl.replace tbl j ()) truth;
  let tp = Array.fold_left
      (fun acc j -> if Hashtbl.mem tbl j then acc + 1 else acc)
      0 estimate
  in
  let precision =
    if Array.length estimate = 0 then 0.0
    else float_of_int tp /. float_of_int (Array.length estimate)
  in
  let recall =
    if Array.length truth = 0 then 0.0
    else float_of_int tp /. float_of_int (Array.length truth)
  in
  (precision, recall)

let support_f1 ~truth ~estimate =
  let p, r = support_precision_recall ~truth ~estimate in
  if p +. r <= 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let coeffs_rmse ~truth ~estimate =
  if truth.Mat.rows <> estimate.Mat.rows || truth.Mat.cols <> estimate.Mat.cols
  then invalid_arg "Metrics.coeffs_rmse: shape mismatch";
  let n = Array.length truth.Mat.data in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = estimate.Mat.data.(i) -. truth.Mat.data.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let predict_state ~coeffs (d : Dataset.t) k =
  assert (coeffs.Mat.rows = d.Dataset.n_states);
  assert (coeffs.Mat.cols = d.Dataset.n_basis);
  Mat.mat_vec d.Dataset.design.(k) (Mat.row coeffs k)

let coeffs_error_pooled ~coeffs (d : Dataset.t) =
  let pairs =
    Array.init d.Dataset.n_states (fun k ->
        (predict_state ~coeffs d k, d.Dataset.response.(k)))
  in
  relative_rms_pooled pairs
