(** Error metrics for model validation.

    The paper's "modeling error" is the relative L2 error on an
    independent testing set, pooled over all states:
    ‖ŷ − y‖₂ / ‖y‖₂ (reported in percent). *)

open Cbmf_linalg

val rmse : predicted:Vec.t -> actual:Vec.t -> float

val relative_rms : predicted:Vec.t -> actual:Vec.t -> float
(** ‖ŷ − y‖ / ‖y‖; raises on a zero-norm actual. *)

val relative_rms_pooled : (Vec.t * Vec.t) array -> float
(** [(predicted, actual)] pairs, one per state; pooled as
    sqrt(Σ‖ŷ_k−y_k‖²)/sqrt(Σ‖y_k‖²). *)

val percent : float -> float
(** ×100. *)

val r_squared : predicted:Vec.t -> actual:Vec.t -> float
(** Coefficient of determination. *)

val max_abs_error : predicted:Vec.t -> actual:Vec.t -> float

(** {1 Support recovery (synthetic ground truth)} *)

val support_precision_recall :
  truth:int array -> estimate:int array -> float * float
(** [(precision, recall)] of an estimated support (set of column
    indices) against the true one.  Duplicate-free inputs assumed;
    an empty side scores 0 on its ratio. *)

val support_f1 : truth:int array -> estimate:int array -> float
(** Harmonic mean of precision and recall; 0 when both are empty. *)

val coeffs_rmse : truth:Mat.t -> estimate:Mat.t -> float
(** Entry-wise root-mean-square error between two coefficient matrices
    of identical shape — the recovery-accuracy metric a physical
    testbench can never provide. *)

(** {1 Multi-state model evaluation} *)

val coeffs_error_pooled :
  coeffs:Mat.t -> Dataset.t -> float
(** Pooled relative RMS of the per-state linear models given by rows of
    [coeffs] (K×M) against a dataset. *)

val predict_state : coeffs:Mat.t -> Dataset.t -> int -> Vec.t
(** ŷ_k = B_k · coeffs_k. *)
