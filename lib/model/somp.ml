open Cbmf_linalg

type result = { support : int array; coeffs : Mat.t }

let select_next (d : Dataset.t) ~residual ~exclude =
  let m = d.Dataset.n_basis in
  let scores = Array.make m 0.0 in
  for k = 0 to d.Dataset.n_states - 1 do
    let b = d.Dataset.design.(k) in
    let norms = Dataset.column_norms d k in
    let corr = Mat.mat_tvec b residual.(k) in
    for j = 0 to m - 1 do
      scores.(j) <- scores.(j) +. (abs_float corr.(j) /. norms.(j))
    done
  done;
  let best = ref (-1) and best_score = ref neg_infinity in
  for j = 0 to m - 1 do
    if (not exclude.(j)) && scores.(j) > !best_score then begin
      best := j;
      best_score := scores.(j)
    end
  done;
  if !best < 0 then raise Not_found;
  !best

(* A greedy pass that ends before its requested length is recoverable
   (the prefix is returned) but skews model selection, so the truncation
   is recorded instead of being dropped on the floor. *)
let note_early_stop ~step ~reason =
  Cbmf_robust.Diag.note
    (Cbmf_robust.Fault.Early_stop { site = "somp.fit"; step; reason })

let fit_naive (d : Dataset.t) ~n_terms =
  let m = d.Dataset.n_basis in
  let n_terms = Stdlib.min n_terms (Stdlib.min d.Dataset.n_samples m) in
  assert (n_terms > 0);
  let exclude = Array.make m false in
  let support = ref [] in
  let residual = Array.map Vec.copy d.Dataset.response in
  let refit sup =
    let coeffs = Ols.fit_on_support d ~support:sup in
    for k = 0 to d.Dataset.n_states - 1 do
      residual.(k) <-
        Vec.sub d.Dataset.response.(k) (Metrics.predict_state ~coeffs d k)
    done;
    coeffs
  in
  let coeffs = ref (Mat.create d.Dataset.n_states m) in
  (try
     for step = 1 to n_terms do
       let j =
         try select_next d ~residual ~exclude
         with Not_found ->
           note_early_stop ~step ~reason:"no admissible column left";
           raise Exit
       in
       exclude.(j) <- true;
       support := j :: !support;
       try coeffs := refit (Array.of_list (List.rev !support))
       with Qr.Rank_deficient p ->
         note_early_stop ~step
           ~reason:(Printf.sprintf "rank-deficient refit (pivot %d)" p);
         raise Exit
     done
   with Exit -> ());
  { support = Array.of_list (List.rev !support); coeffs = !coeffs }

(* --- Incremental refit -----------------------------------------------
   The naive pass re-solves a from-scratch QR per greedy step: O(N·a²)
   per state per step, O(N·θ³) total.  But consecutive supports differ
   by exactly one column, so the normal equations only gain one border
   row: maintaining the support Gram's Cholesky factor per state turns
   each refit into an O(N·a + a²) append (cross products of the new
   column against the support, one forward substitution) plus an O(a²)
   triangular solve pair, and the residual update touches only the
   support columns instead of the full M-column prediction.

   Numerical safety: a border pivot d² = ‖b_j‖² − ‖w‖² that is tiny
   relative to ‖b_j‖² (or non-finite) means the new column is nearly in
   the span of the support — exactly where squared-condition normal
   equations lose to QR.  The pass then degrades, downdate-free, to the
   naive QR refit for that and all later steps (the Gram state is
   abandoned, never repaired), so ill-conditioned designs follow the
   oracle path. *)

let border_rel_tol = 1e-12

let fit (d : Dataset.t) ~n_terms =
  let m = d.Dataset.n_basis
  and nk = d.Dataset.n_states
  and n = d.Dataset.n_samples in
  let n_terms = Stdlib.min n_terms (Stdlib.min n m) in
  assert (n_terms > 0);
  let exclude = Array.make m false in
  let support = Array.make n_terms 0 in
  let n_sel = ref 0 in
  let residual = Array.map Vec.copy d.Dataset.response in
  (* Per-state lower Cholesky factor of the support Gram, row-major in
     an n_terms×n_terms scratch; [rhs] holds B_Sᵀy in support order. *)
  let chol = Array.init nk (fun _ -> Array.make (n_terms * n_terms) 0.0) in
  let rhs = Array.init nk (fun _ -> Array.make n_terms 0.0) in
  let sol = Array.init nk (fun _ -> Array.make n_terms 0.0) in
  let coeffs = ref (Mat.create nk m) in
  let degraded = ref false in
  let refit_naive sup =
    let c = Ols.fit_on_support d ~support:sup in
    for k = 0 to nk - 1 do
      residual.(k) <-
        Vec.sub d.Dataset.response.(k) (Metrics.predict_state ~coeffs:c d k)
    done;
    c
  in
  (* Border state [k]'s factor with column [j] at position [a]; raises
     [Exit] when the pivot collapses. *)
  let border k j a =
    let b = d.Dataset.design.(k) in
    let data = b.Mat.data and cols = b.Mat.cols in
    let l = chol.(k) in
    let row = a * n_terms in
    for s = 0 to a - 1 do
      let js = support.(s) in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        let base = i * cols in
        acc := !acc +. (data.(base + js) *. data.(base + j))
      done;
      l.(row + s) <- !acc
    done;
    let djj = ref 0.0 in
    for i = 0 to n - 1 do
      let v = data.((i * cols) + j) in
      djj := !djj +. (v *. v)
    done;
    (* forward-substitute the cross products in place: row a of L *)
    for s = 0 to a - 1 do
      let acc = ref l.(row + s) in
      for t = 0 to s - 1 do
        acc := !acc -. (l.(row + t) *. l.((s * n_terms) + t))
      done;
      l.(row + s) <- !acc /. l.((s * n_terms) + s)
    done;
    let d2 = ref !djj in
    for t = 0 to a - 1 do
      let v = l.(row + t) in
      d2 := !d2 -. (v *. v)
    done;
    if (not (Float.is_finite !d2)) || !d2 <= border_rel_tol *. !djj then begin
      Cbmf_robust.Diag.note
        (Cbmf_robust.Fault.Not_pd
           { site = "somp.fit.border"; dim = a + 1; tries = 1 });
      raise Exit
    end;
    l.(row + a) <- sqrt !d2;
    rhs.(k).(a) <- (Dataset.bty d k).(j)
  in
  let solve_and_update a1 =
    let c = Mat.create nk m in
    for k = 0 to nk - 1 do
      let l = chol.(k) and g = rhs.(k) and x = sol.(k) in
      for s = 0 to a1 - 1 do
        let acc = ref g.(s) in
        for t = 0 to s - 1 do
          acc := !acc -. (l.((s * n_terms) + t) *. x.(t))
        done;
        x.(s) <- !acc /. l.((s * n_terms) + s)
      done;
      for s = a1 - 1 downto 0 do
        let acc = ref x.(s) in
        for t = s + 1 to a1 - 1 do
          acc := !acc -. (l.((t * n_terms) + s) *. x.(t))
        done;
        x.(s) <- !acc /. l.((s * n_terms) + s);
        Mat.set c k support.(s) x.(s)
      done;
      let b = d.Dataset.design.(k) in
      let data = b.Mat.data and cols = b.Mat.cols in
      let y = d.Dataset.response.(k) and r = residual.(k) in
      for i = 0 to n - 1 do
        let base = i * cols in
        let acc = ref 0.0 in
        for s = 0 to a1 - 1 do
          acc := !acc +. (data.(base + support.(s)) *. x.(s))
        done;
        r.(i) <- y.(i) -. !acc
      done
    done;
    c
  in
  (try
     for step = 1 to n_terms do
       let j =
         try select_next d ~residual ~exclude
         with Not_found ->
           note_early_stop ~step ~reason:"no admissible column left";
           raise Exit
       in
       exclude.(j) <- true;
       let a = !n_sel in
       support.(a) <- j;
       incr n_sel;
       if not !degraded then begin
         try
           for k = 0 to nk - 1 do
             border k j a
           done
         with Exit -> degraded := true
       end;
       if !degraded then begin
         try coeffs := refit_naive (Array.sub support 0 (a + 1))
         with Qr.Rank_deficient p ->
           note_early_stop ~step
             ~reason:(Printf.sprintf "rank-deficient refit (pivot %d)" p);
           raise Exit
       end
       else coeffs := solve_and_update (a + 1)
     done
   with Exit -> ());
  { support = Array.sub support 0 !n_sel; coeffs = !coeffs }

let fit_cv (d : Dataset.t) ~n_folds ~candidate_terms =
  assert (Array.length candidate_terms > 0);
  (* Folds are invariant across candidate sparsity levels: materialize
     them once instead of once per (terms, fold) pair. *)
  let folds =
    Array.init n_folds (fun fold -> Dataset.split_fold d ~n_folds ~fold)
  in
  let cv_error terms =
    let acc = ref 0.0 in
    Array.iter
      (fun (train, test) ->
        let r = fit train ~n_terms:terms in
        acc := !acc +. Metrics.coeffs_error_pooled ~coeffs:r.coeffs test)
      folds;
    !acc /. float_of_int n_folds
  in
  let errors = Array.map cv_error candidate_terms in
  let best = Vec.argmin errors in
  let chosen = candidate_terms.(best) in
  (fit d ~n_terms:chosen, chosen)
