(** Simultaneous orthogonal matching pursuit (S-OMP) [19] — the
    state-of-the-art baseline the paper compares against.

    S-OMP assumes all states share one sparse model template: at every
    greedy step the basis function maximizing the {e summed} residual
    correlation over all states (paper eq. 33) joins the shared
    support, and each state's coefficients are re-solved independently
    by least squares on that support. *)

open Cbmf_linalg

type result = {
  support : int array;  (** shared template, in selection order *)
  coeffs : Mat.t;  (** K×M, zeros off the support *)
}

val select_next : Dataset.t -> residual:Vec.t array -> exclude:bool array -> int
(** One greedy selection step (eq. 33, with per-state column
    normalization); returns the winning column.  Raises [Not_found] if
    every column is excluded. *)

val fit : Dataset.t -> n_terms:int -> result
(** Greedy fit with a fixed support size (capped at N and M).

    The per-step least-squares refit is incremental: each state's
    support Gram keeps a bordered Cholesky factor, so adding a column
    costs O(N·a + a²) instead of the naive from-scratch QR's O(N·a²).
    When a border pivot collapses (the new column is numerically in
    the span of the support) the pass degrades, downdate-free, to the
    naive QR refit of {!fit_naive} for the remaining steps and notes a
    [Not_pd] fault in the ambient {!Cbmf_robust.Diag} recorder.  A
    pass that ends before [n_terms] (no admissible column, or a
    rank-deficient refit) returns the completed prefix and notes an
    [Early_stop] fault instead of failing silently. *)

val fit_naive : Dataset.t -> n_terms:int -> result
(** The pre-incremental reference path: a from-scratch QR refit per
    greedy step.  Kept as the oracle for {!fit} — same selection rule,
    same early-stop semantics — and as the "before" baseline for the
    front-end bench. *)

val fit_cv :
  Dataset.t -> n_folds:int -> candidate_terms:int array -> result * int
(** Sparsity level chosen by pooled cross-validation, refit on all
    samples.  This is the full baseline configuration used in the
    experiments. *)
