open Cbmf_linalg

type t = {
  n_states : int;
  n_samples : int;
  n_basis : int;
  design : Mat.t array;
  response : Vec.t array;
  mutable norms_cache : Vec.t option array;
  mutable bty_cache : Vec.t option array;
  mutable ssq_cache : Vec.t option array;
  mutable gram_cache : Mat.t option array;
}

let create ~design ~response =
  let n_states = Array.length design in
  assert (n_states > 0);
  assert (Array.length response = n_states);
  let n_samples = design.(0).Mat.rows in
  let n_basis = design.(0).Mat.cols in
  Array.iteri
    (fun k (b : Mat.t) ->
      assert (b.Mat.rows = n_samples);
      assert (b.Mat.cols = n_basis);
      assert (Array.length response.(k) = n_samples))
    design;
  {
    n_states;
    n_samples;
    n_basis;
    design;
    response;
    norms_cache = Array.make n_states None;
    bty_cache = Array.make n_states None;
    ssq_cache = Array.make n_states None;
    gram_cache = Array.make n_states None;
  }

(* --- Per-design-matrix caches -----------------------------------------
   Column norms and Bᵀy are invariants of a design matrix, but the
   greedy front end (S-OMP selection, Algorithm 1's grid) historically
   recomputed them inside every iteration — an O(N·M·θ) term that
   dominates selection once fitting is cheap.  They are computed lazily,
   once per state, and shared by every subsequent pass over the same
   dataset.  The returned arrays are the cache itself: callers must not
   mutate them.  Writing a freshly computed array into the slot is a
   single pointer store, and the value is a pure function of the design,
   so concurrent lazy initialization from pool workers is idempotent;
   [warm_caches] lets hot paths force the fill before fanning out. *)

(* Raw per-column sums of squares, the quantity the appends below can
   carry forward exactly.  [column_norms] derives its zero-safe sqrt
   view from this, in the same accumulation order as
   {!Cbmf_basis.Dictionary.column_norms} (rows ascending, columns
   inner), so the cached norms are bit-identical to a from-scratch
   recomputation whether they were filled lazily or incrementally. *)
let ssq d k =
  match d.ssq_cache.(k) with
  | Some v -> v
  | None ->
      let b = d.design.(k) in
      let v = Array.make d.n_basis 0.0 in
      for i = 0 to b.Mat.rows - 1 do
        let off = i * d.n_basis in
        for j = 0 to d.n_basis - 1 do
          let x = b.Mat.data.(off + j) in
          v.(j) <- v.(j) +. (x *. x)
        done
      done;
      d.ssq_cache.(k) <- Some v;
      v

let column_norms d k =
  match d.norms_cache.(k) with
  | Some v -> v
  | None ->
      let v =
        Array.map (fun s -> if s > 0.0 then sqrt s else 1.0) (ssq d k)
      in
      d.norms_cache.(k) <- Some v;
      v

let bty d k =
  match d.bty_cache.(k) with
  | Some v -> v
  | None ->
      let v = Mat.mat_tvec d.design.(k) d.response.(k) in
      d.bty_cache.(k) <- Some v;
      v

let gram d k =
  match d.gram_cache.(k) with
  | Some g -> g
  | None ->
      let g = Mat.gram d.design.(k) in
      d.gram_cache.(k) <- Some g;
      g

let warm_caches d =
  for k = 0 to d.n_states - 1 do
    ignore (column_norms d k);
    ignore (bty d k)
  done

(* --- Streaming appends ----------------------------------------------
   The active-learning loop grows a dataset one acquisition round at a
   time.  Appends return a fresh dataset (values stay immutable from
   the caller's point of view) but carry every already-materialized
   cache forward incrementally: new rows extend the per-column
   sums-of-squares and Bᵀy partial sums in the same ascending-row
   order a from-scratch pass would use (bit-identical), and extend the
   M×M Grams by one outer product per row (O(M²) instead of O(N·M²)).
   Caches the parent never filled stay lazy in the child too. *)

let append_rows d ~design ~response =
  if Array.length design <> d.n_states || Array.length response <> d.n_states
  then invalid_arg "Dataset.append_rows: need one block per state";
  let n_new = design.(0).Mat.rows in
  if n_new < 1 then invalid_arg "Dataset.append_rows: empty append";
  Array.iteri
    (fun k (b : Mat.t) ->
      if
        b.Mat.rows <> n_new
        || b.Mat.cols <> d.n_basis
        || Array.length response.(k) <> n_new
      then invalid_arg "Dataset.append_rows: block shape mismatch")
    design;
  let m = d.n_basis in
  let n = d.n_samples in
  let design' =
    Array.mapi
      (fun k (nb : Mat.t) ->
        let flat = Array.make ((n + n_new) * m) 0.0 in
        Array.blit d.design.(k).Mat.data 0 flat 0 (n * m);
        Array.blit nb.Mat.data 0 flat (n * m) (n_new * m);
        Mat.unsafe_of_flat ~rows:(n + n_new) ~cols:m flat)
      design
  in
  let response' =
    Array.mapi
      (fun k ys ->
        let y = Array.make (n + n_new) 0.0 in
        Array.blit d.response.(k) 0 y 0 n;
        Array.blit ys 0 y n n_new;
        y)
      response
  in
  let child = create ~design:design' ~response:response' in
  for k = 0 to d.n_states - 1 do
    let nb = design.(k) and ys = response.(k) in
    (match d.ssq_cache.(k) with
    | None -> ()
    | Some old ->
        let v = Array.copy old in
        for i = 0 to n_new - 1 do
          let off = i * m in
          for j = 0 to m - 1 do
            let x = nb.Mat.data.(off + j) in
            v.(j) <- v.(j) +. (x *. x)
          done
        done;
        child.ssq_cache.(k) <- Some v;
        child.norms_cache.(k) <-
          Some (Array.map (fun s -> if s > 0.0 then sqrt s else 1.0) v));
    (match d.bty_cache.(k) with
    | None -> ()
    | Some old ->
        let v = Array.copy old in
        for i = 0 to n_new - 1 do
          let yi = ys.(i) in
          if yi <> 0.0 then begin
            let off = i * m in
            for j = 0 to m - 1 do
              v.(j) <- v.(j) +. (yi *. nb.Mat.data.(off + j))
            done
          end
        done;
        child.bty_cache.(k) <- Some v);
    match d.gram_cache.(k) with
    | None -> ()
    | Some old ->
        let g = Mat.copy old in
        for i = 0 to n_new - 1 do
          let r = Mat.row nb i in
          Mat.add_outer_inplace g 1.0 r r
        done;
        child.gram_cache.(k) <- Some g
  done;
  child

let append_row d ~rows ~ys =
  if Array.length rows <> d.n_states || Array.length ys <> d.n_states then
    invalid_arg "Dataset.append_row: need one (row, y) per state";
  let m = d.n_basis in
  let design =
    Array.map
      (fun (r : Vec.t) ->
        if Array.length r <> m then
          invalid_arg "Dataset.append_row: row width mismatch";
        Mat.unsafe_of_flat ~rows:1 ~cols:m (Array.copy r))
      rows
  in
  let response = Array.map (fun y -> [| y |]) ys in
  append_rows d ~design ~response

let truncate_samples d ~n =
  assert (n > 0 && n <= d.n_samples);
  let design =
    Array.map
      (fun (b : Mat.t) ->
        Mat.submatrix b ~row0:0 ~col0:0 ~rows:n ~cols:b.Mat.cols)
      d.design
  in
  let response = Array.map (fun y -> Array.sub y 0 n) d.response in
  create ~design ~response

let select_rows d idx =
  assert (Array.length idx = d.n_states);
  let design =
    Array.mapi
      (fun k rows ->
        Mat.init (Array.length rows) d.n_basis (fun i j ->
            Mat.get d.design.(k) rows.(i) j))
      idx
  in
  let response =
    Array.mapi
      (fun k rows -> Array.map (fun i -> d.response.(k).(i)) rows)
      idx
  in
  create ~design ~response

let select_states d states =
  assert (Array.length states > 0);
  Array.iter (fun k -> assert (k >= 0 && k < d.n_states)) states;
  create
    ~design:(Array.map (fun k -> Mat.copy d.design.(k)) states)
    ~response:(Array.map (fun k -> Array.copy d.response.(k)) states)

let split_fold d ~n_folds ~fold =
  assert (n_folds >= 2 && fold >= 0 && fold < n_folds);
  assert (d.n_samples >= n_folds);
  let test_rows = ref [] and train_rows = ref [] in
  for i = d.n_samples - 1 downto 0 do
    if i mod n_folds = fold then test_rows := i :: !test_rows
    else train_rows := i :: !train_rows
  done;
  let test = Array.of_list !test_rows and train = Array.of_list !train_rows in
  ( select_rows d (Array.make d.n_states train),
    select_rows d (Array.make d.n_states test) )

(* --- Finiteness validation ------------------------------------------
   A single NaN/Inf anywhere in the design or response poisons every
   downstream factorization, so datasets are screened before fitting.
   The report is row-granular: one entry per offending (state, row)
   with the first bad column ([col = -1] flags the response). *)

type invalid_row = { state : int; row : int; col : int }

type report = { n_rows : int; invalid : invalid_row array }

let validate d =
  let bad = ref [] and n_bad = ref 0 in
  for s = d.n_states - 1 downto 0 do
    let b = d.design.(s) and y = d.response.(s) in
    for i = d.n_samples - 1 downto 0 do
      let col = ref (-2) in
      if not (Float.is_finite y.(i)) then col := -1;
      let base = i * d.n_basis in
      for j = d.n_basis - 1 downto 0 do
        if not (Float.is_finite b.Mat.data.(base + j)) then col := j
      done;
      if !col > -2 then begin
        bad := { state = s; row = i; col = !col } :: !bad;
        incr n_bad
      end
    done
  done;
  if !n_bad = 0 then Ok ()
  else Error { n_rows = d.n_states * d.n_samples; invalid = Array.of_list !bad }

let validate_exn d =
  match validate d with
  | Ok () -> ()
  | Error rep ->
      raise
        (Cbmf_robust.Fault.Error
           (Cbmf_robust.Fault.Non_finite
              {
                site = "dataset.validate";
                what =
                  Printf.sprintf "%d of %d rows (first: state %d row %d)"
                    (Array.length rep.invalid) rep.n_rows
                    rep.invalid.(0).state rep.invalid.(0).row;
                index = rep.invalid.(0).row;
              }))

let response_norm d =
  let acc = ref 0.0 in
  Array.iter (fun y -> acc := !acc +. Vec.norm2_sq y) d.response;
  sqrt !acc

let total_samples d = d.n_states * d.n_samples

let state_design d k = d.design.(k)

let state_response d k = d.response.(k)
