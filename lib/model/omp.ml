open Cbmf_linalg

type result = { support : int array; coeffs : Vec.t }

let fit_with_norms ~norms ~design ~response ~n_terms =
  let n = design.Mat.rows and m = design.Mat.cols in
  assert (Array.length response = n);
  assert (Array.length norms = m);
  let n_terms = Stdlib.min n_terms (Stdlib.min n m) in
  assert (n_terms > 0);
  let selected = Array.make m false in
  let support = ref [] in
  let residual = ref (Vec.copy response) in
  let coeffs_on set =
    let sup = Array.of_list (List.rev set) in
    let sub = Mat.select_cols design sup in
    (sup, Qr.lstsq sub response, sub)
  in
  let last = ref None in
  (try
     for _ = 1 to n_terms do
       (* Score all unselected columns against the residual. *)
       let best = ref (-1) and best_score = ref neg_infinity in
       let scores = Mat.mat_tvec design !residual in
       for j = 0 to m - 1 do
         if not selected.(j) then begin
           let s = abs_float scores.(j) /. norms.(j) in
           if s > !best_score then begin
             best_score := s;
             best := j
           end
         end
       done;
       if !best < 0 then raise Exit;
       selected.(!best) <- true;
       support := !best :: !support;
       let sup, c, sub = coeffs_on !support in
       last := Some (sup, c);
       residual := Vec.sub response (Mat.mat_vec sub c)
     done
   with Exit | Qr.Rank_deficient _ -> ());
  match !last with
  | None -> invalid_arg "Omp.fit: no column selected"
  | Some (sup, c) ->
      let coeffs = Vec.create m in
      Array.iteri (fun j col -> coeffs.(col) <- c.(j)) sup;
      { support = sup; coeffs }

let fit ~design ~response ~n_terms =
  fit_with_norms
    ~norms:(Cbmf_basis.Dictionary.column_norms design)
    ~design ~response ~n_terms

let predict r design = Mat.mat_vec design r.coeffs

let fit_cv ~design ~response ~n_folds ~candidate_terms =
  assert (Array.length candidate_terms > 0);
  let n = design.Mat.rows in
  assert (n >= n_folds);
  let fold_error terms =
    let acc = ref 0.0 in
    for fold = 0 to n_folds - 1 do
      let train_rows = ref [] and test_rows = ref [] in
      for i = n - 1 downto 0 do
        if i mod n_folds = fold then test_rows := i :: !test_rows
        else train_rows := i :: !train_rows
      done;
      let pick rows (v : Vec.t) = Array.map (fun i -> v.(i)) (Array.of_list rows) in
      let pick_m rows =
        let rows = Array.of_list rows in
        Mat.init (Array.length rows) design.Mat.cols (fun i j ->
            Mat.get design rows.(i) j)
      in
      let r =
        fit ~design:(pick_m !train_rows) ~response:(pick !train_rows response)
          ~n_terms:terms
      in
      let predicted = predict r (pick_m !test_rows) in
      acc :=
        !acc
        +. Metrics.relative_rms ~predicted ~actual:(pick !test_rows response)
    done;
    !acc /. float_of_int n_folds
  in
  let errors = Array.map fold_error candidate_terms in
  let best = Vec.argmin errors in
  let chosen = candidate_terms.(best) in
  (fit ~design ~response ~n_terms:chosen, chosen)
