(* Command-line driver for the model-serving subsystem: fit-and-save
   snapshots, run the socket server, poke a running server. *)

open Cmdliner
open Cbmf_serve

(* --- Address selection ------------------------------------------------ *)

let sockaddr ~socket ~port =
  match (socket, port) with
  | Some path, _ -> Unix.ADDR_UNIX path
  | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
  | None, None ->
      prerr_endline "cbmf_serve: pass --socket PATH or --port PORT";
      exit 2

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port on 127.0.0.1.")

(* --- fit: train a model and save its snapshot ------------------------- *)

let run_fit circuit out seed n_train quick =
  let w =
    match circuit with
    | "lna" -> Cbmf_experiments.Workload.lna ()
    | "mixer" -> Cbmf_experiments.Workload.mixer ()
    | name ->
        prerr_endline (Printf.sprintf "unknown circuit %S" name);
        exit 2
  in
  Printf.printf "Simulating %s (seed %d, %d samples/state)...\n%!"
    w.Cbmf_experiments.Workload.name seed n_train;
  let data =
    Cbmf_experiments.Workload.generate w ~seed ~n_train_max:n_train
      ~n_test_per_state:1
  in
  let train =
    Cbmf_experiments.Workload.train_dataset data ~poi:0 ~n_per_state:n_train
  in
  let config =
    if quick then Cbmf_core.Cbmf.fast_config else Cbmf_core.Cbmf.default_config
  in
  Printf.printf "Fitting...\n%!";
  let fitted = Cbmf_core.Cbmf.fit ~config train in
  let model =
    Model.of_fit
      ~dict:w.Cbmf_experiments.Workload.dictionary
      (Cbmf_core.Cbmf.fitted_view fitted)
  in
  Snapshot.save ~path:out model;
  Printf.printf "Saved %s: %d active terms, %d states, %d bytes\n" out
    (Model.n_active model) model.Model.n_states
    (String.length (Snapshot.encode model))

let fit_cmd =
  let circuit =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CIRCUIT" ~doc:"lna or mixer.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Snapshot output path.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Monte-Carlo seed.") in
  let n_train =
    Arg.(value & opt int 10 & info [ "n-train" ] ~doc:"Training samples per state.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Fast (non-paper) fit settings.")
  in
  Cmd.v
    (Cmd.info "fit" ~doc:"Fit a C-BMF model and save a serving snapshot.")
    Term.(const run_fit $ circuit $ out $ seed $ n_train $ quick)

(* --- serve: run the server ------------------------------------------- *)

let parse_model_spec spec =
  match String.index_opt spec '=' with
  | Some i ->
      (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  | None ->
      prerr_endline
        (Printf.sprintf "bad --model %S (expected NAME=SNAPSHOT_PATH)" spec);
      exit 2

(* Sharded serving: fork one full server per shard on
   "<socket>.shard-<i>", then route the pre-registered models to their
   consistent-hash owners over the wire.  The parent just supervises:
   it parks until a signal, then shuts the cluster down gracefully. *)
let run_sharded ~config ~shards ~models socket =
  let base_path =
    match socket with
    | Some p -> p
    | None ->
        prerr_endline "cbmf_serve: --shards needs --socket BASE_PATH";
        exit 2
  in
  let cluster = Shard.start ~config ~shards ~base_path () in
  Shard.wait_ready cluster;
  Array.iter
    (function
      | Unix.ADDR_UNIX path -> Printf.printf "Listening on %s\n%!" path
      | _ -> ())
    (Shard.addrs cluster);
  let router = Shard.connect cluster in
  List.iter
    (fun spec ->
      let name, path = parse_model_spec spec in
      match Shard.load_path router ~name ~path with
      | Ok _ ->
          Printf.printf "Loaded %S -> %s on shard %d\n%!" name path
            (Shard.route router ~name)
      | Error msg ->
          prerr_endline (Printf.sprintf "load %S failed: %s" name msg);
          Shard.close_router router;
          Shard.stop cluster;
          exit 1)
    models;
  Shard.close_router router;
  let stop_requested = ref false in
  let stop_on_signal _ = stop_requested := true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal)
   with Invalid_argument _ -> ());
  while not !stop_requested do
    Thread.delay 0.2
  done;
  Shard.stop cluster;
  print_endline "Cluster stopped."

let run_serve socket port workers timeout max_mb queue_cap deadline
    drain_timeout retry_after_ms batch_window_us batch_max shards models =
  let config =
    {
      Server.default_config with
      workers;
      timeout;
      queue_cap;
      deadline;
      drain_timeout;
      retry_after_ms;
      batch_window_us;
      batch_max;
    }
  in
  if shards > 1 then run_sharded ~config ~shards ~models socket
  else begin
    let addr = sockaddr ~socket ~port in
    let registry =
      Registry.create ~max_bytes:(max_mb * 1024 * 1024) ()
    in
    List.iter
      (fun spec ->
        let name, path = parse_model_spec spec in
        Registry.add_path registry ~name path;
        Printf.printf "Registered %S -> %s (lazy)\n%!" name path)
      models;
    let server = Server.start ~config ~registry addr in
    (match Server.addr server with
    | Unix.ADDR_UNIX path -> Printf.printf "Listening on %s\n%!" path
    | Unix.ADDR_INET (host, p) ->
        Printf.printf "Listening on %s:%d\n%!" (Unix.string_of_inet_addr host) p);
    let stop_on_signal _ = Server.request_stop server in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal)
     with Invalid_argument _ -> ());
    Server.wait server;
    print_endline "Server stopped."
  end

let serve_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker threads.")
  in
  let timeout =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~doc:"Per-request socket timeout, seconds.")
  in
  let max_mb =
    Arg.(
      value & opt int 256
      & info [ "max-mb" ] ~doc:"Registry budget for resident models, MiB.")
  in
  let queue_cap =
    Arg.(
      value
      & opt int Server.default_config.Server.queue_cap
      & info [ "queue-cap" ]
          ~doc:
            "Admission-queue capacity.  Connections arriving with the queue \
             full are shed: a typed overloaded reply with a retry hint, then \
             close — the acceptor never blocks.")
  in
  let deadline =
    Arg.(
      value
      & opt float Server.default_config.Server.deadline
      & info [ "deadline" ]
          ~doc:
            "Server-side per-request deadline budget in seconds (0 = none).  \
             A request's first budget starts at accept, so queue wait counts; \
             expired requests get a typed deadline-exceeded reply.")
  in
  let drain_timeout =
    Arg.(
      value
      & opt float Server.default_config.Server.drain_timeout
      & info [ "drain-timeout" ]
          ~doc:
            "Seconds to let in-flight requests finish on stop before \
             force-closing their connections.")
  in
  let retry_after_ms =
    Arg.(
      value
      & opt int Server.default_config.Server.retry_after_ms
      & info [ "retry-after-ms" ]
          ~doc:"Retry hint carried in shed (overloaded) replies.")
  in
  let batch_window_us =
    Arg.(
      value & opt int (-1)
      & info [ "batch-window-us" ]
          ~doc:
            "Dynamic-batching window in microseconds: predicts from all \
             connections are coalesced into merged engine calls (replies \
             stay bit-identical).  0 disables batching; negative (the \
             default) uses CBMF_BATCH_WINDOW_US or 200.")
  in
  let batch_max =
    Arg.(
      value & opt int 0
      & info [ "batch-max" ]
          ~doc:
            "Points per merged engine call before an early flush.  0 or \
             negative (the default) uses CBMF_BATCH_MAX or 4 engine chunks.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Run N server processes, models placed by consistent hash of \
             their name on $(b,--socket).shard-<i> sockets (requires \
             --socket).  Placement ignores reload generations, so hot \
             reloads never move a model.")
  in
  let models =
    Arg.(
      value & opt_all string []
      & info [ "model" ] ~docv:"NAME=PATH"
          ~doc:"Pre-register a snapshot (repeatable, loaded lazily).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the inference server.")
    Term.(
      const run_serve $ socket_t $ port_t $ workers $ timeout $ max_mb
      $ queue_cap $ deadline $ drain_timeout $ retry_after_ms
      $ batch_window_us $ batch_max $ shards $ models)

(* --- Client one-shots ------------------------------------------------- *)

let with_client ~socket ~port f =
  let c = Client.connect (sockaddr ~socket ~port) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let shard_base ~socket =
  match socket with
  | Some p -> p
  | None ->
      prerr_endline "cbmf_serve: --shards needs --socket BASE_PATH";
      exit 2

(* Name-routed one-shots against a sharded cluster: connect only to
   the shard the consistent hash owns [name] on. *)
let with_routed ~socket ~port ~shards ~name f =
  if shards <= 1 then with_client ~socket ~port f
  else begin
    let base_path = shard_base ~socket in
    let router =
      Shard.router ~shards (fun i ->
          Client.connect (Shard.shard_addr ~base_path i))
    in
    Fun.protect
      ~finally:(fun () -> Shard.close_router router)
      (fun () -> f (Shard.client_for router ~name))
  end

(* Unnamed one-shots (ping, stats, shutdown) fan over every shard. *)
let each_shard ~socket ~port ~shards f =
  if shards <= 1 then with_client ~socket ~port (f 0)
  else begin
    let base_path = shard_base ~socket in
    for i = 0 to shards - 1 do
      let c = Client.connect (Shard.shard_addr ~base_path i) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f i c)
    done
  end

let shards_t =
  Arg.(
    value & opt int 1
    & info [ "shards" ]
        ~doc:
          "Talk to an N-shard cluster rooted at --socket BASE_PATH; \
           model-named requests go to the consistent-hash owner shard.")

let run_load socket port shards name path =
  with_routed ~socket ~port ~shards ~name (fun c ->
      match Client.load_path c ~name ~path with
      | Ok (n_active, n_states, bytes) ->
          Printf.printf "Loaded %S: %d active terms, %d states, ~%d bytes\n"
            name n_active n_states bytes
      | Error msg ->
          prerr_endline ("load failed: " ^ msg);
          exit 1)

let load_cmd =
  let name_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let path_t =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SNAPSHOT")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Ask a running server to load a snapshot file.")
    Term.(const run_load $ socket_t $ port_t $ shards_t $ name_t $ path_t)

let run_predict socket port shards name state xspec =
  let x =
    String.split_on_char ',' xspec
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun s -> float_of_string (String.trim s))
    |> Array.of_list
  in
  let xs =
    Cbmf_linalg.Mat.unsafe_of_flat ~rows:1 ~cols:(Array.length x) x
  in
  with_routed ~socket ~port ~shards ~name (fun c ->
      match Client.predict c ~name ~states:[| state |] ~xs with
      | Ok (means, sds) ->
          Printf.printf "mean = %.6g, sd = %.6g\n" means.(0) sds.(0)
      | Error msg ->
          prerr_endline ("predict failed: " ^ msg);
          exit 1)

let predict_cmd =
  let name_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let state_t =
    Arg.(value & opt int 0 & info [ "state" ] ~doc:"Knob state index.")
  in
  let x_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "x" ] ~docv:"V1,V2,..." ~doc:"Comma-separated input vector.")
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Predict one point against a loaded model.")
    Term.(
      const run_predict $ socket_t $ port_t $ shards_t $ name_t $ state_t
      $ x_t)

let run_ping socket port shards =
  each_shard ~socket ~port ~shards (fun i c ->
      match Client.ping c with
      | Ok generation ->
          if shards > 1 then
            Printf.printf "shard %d pong: generation %d\n" i generation
          else Printf.printf "pong: generation %d\n" generation
      | Error f ->
          prerr_endline ("ping failed: " ^ Client.failure_to_string f);
          exit 1)

let ping_cmd =
  Cmd.v
    (Cmd.info "ping"
       ~doc:
         "Health-check a running server; prints its registry generation.")
    Term.(const run_ping $ socket_t $ port_t $ shards_t)

let run_reload socket port shards name path =
  with_routed ~socket ~port ~shards ~name (fun c ->
      match Client.reload_path c ~name ~path with
      | Ok (generation, n_active, n_states, bytes) ->
          Printf.printf
            "Reloaded %S (generation %d): %d active terms, %d states, ~%d \
             bytes\n"
            name generation n_active n_states bytes
      | Error f ->
          prerr_endline ("reload failed: " ^ Client.failure_to_string f);
          exit 1)

let reload_cmd =
  let name_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let path_t =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SNAPSHOT")
  in
  Cmd.v
    (Cmd.info "reload"
       ~doc:
         "Hot-swap a served model from a snapshot file.  In-flight requests \
          finish on the old model; a bad snapshot is refused and the old \
          model keeps serving.")
    Term.(const run_reload $ socket_t $ port_t $ shards_t $ name_t $ path_t)

let run_stats socket port shards =
  each_shard ~socket ~port ~shards (fun i c ->
      match Client.stats c with
      | Ok json ->
          if shards > 1 then Printf.printf "shard %d: %s\n" i json
          else print_endline json
      | Error msg ->
          prerr_endline ("stats failed: " ^ msg);
          exit 1)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Dump a running server's counters as JSON.")
    Term.(const run_stats $ socket_t $ port_t $ shards_t)

let run_shutdown socket port shards =
  each_shard ~socket ~port ~shards (fun _ c -> Client.shutdown c);
  print_endline "Shutdown requested."

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Stop a running server.")
    Term.(const run_shutdown $ socket_t $ port_t $ shards_t)

let () =
  let doc = "C-BMF model snapshot and inference serving." in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "cbmf_serve" ~doc)
          [ fit_cmd; serve_cmd; load_cmd; predict_cmd; ping_cmd; reload_cmd;
            stats_cmd; shutdown_cmd ]))
