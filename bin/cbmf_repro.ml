(* Command-line driver: reproduce any of the paper's experiments by id. *)

open Cmdliner
open Cbmf_experiments

let fmt = Format.std_formatter

let workload_of_name = function
  | "lna" -> Workload.lna ()
  | "mixer" -> Workload.mixer ()
  | name -> invalid_arg (Printf.sprintf "unknown circuit %S" name)

let load ~seed ~n_test w =
  Printf.printf "Generating Monte-Carlo data for %s (seed %d)...\n%!"
    w.Workload.name seed;
  Workload.generate w ~seed ~n_train_max:35 ~n_test_per_state:n_test

let cbmf_config ~quick =
  if quick then Cbmf_core.Cbmf.fast_config else Cbmf_core.Cbmf.default_config

let run_figures ~seed ~n_test ~quick name =
  let data = load ~seed ~n_test (workload_of_name name) in
  let n_grid = if quick then [| 10; 20; 35 |] else [| 10; 15; 20; 25; 30; 35 |] in
  let series =
    Sweep.run_all ~cbmf_config:(cbmf_config ~quick) ~n_grid data
  in
  Array.iter (fun s -> Format.fprintf fmt "%a@.@." Sweep.pp s) series

let run_table ~seed ~n_test ~quick name =
  let data = load ~seed ~n_test (workload_of_name name) in
  let t = Tables.run ~cbmf_config:(cbmf_config ~quick) data in
  Format.fprintf fmt "%a@." Tables.pp t;
  Format.fprintf fmt "Accuracy preserved: %b@." (Tables.accuracy_preserved t)

let run_ablation ~seed ~n_test name poi n_per_state =
  let w = workload_of_name name in
  let data = load ~seed ~n_test w in
  let poi_idx = Cbmf_circuit.Testbench.poi_index w.Workload.testbench poi in
  let a = Ablation.run data ~poi:poi_idx ~n_per_state in
  Format.fprintf fmt "%a@." Ablation.pp a

(* Active-learning sample-efficiency curve on a synthetic ground truth:
   variance acquisition vs the fixed grid at matched simulator budgets. *)
let run_budget ~k ~m ~d ~active ~rho ~noise ~seed ~pool_size =
  let spec =
    {
      Cbmf_circuit.Synthetic.default_spec with
      Cbmf_circuit.Synthetic.k;
      m;
      d;
      active_per_state = active;
      rho;
      noise_sigma = noise;
      seed;
    }
  in
  let r = Budget.run ~pool_size spec in
  Format.fprintf fmt "%a@." Budget.pp_result r

(* --- cmdliner plumbing --- *)

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Monte-Carlo seed.")

let n_test_t =
  Arg.(
    value & opt int 50
    & info [ "n-test" ] ~doc:"Testing samples per state (paper: 50).")

let quick_t =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Smaller grids / faster (non-paper) settings.")

let circuit_pos =
  Arg.(
    required
    & pos 0 (some (enum [ ("lna", "lna"); ("mixer", "mixer") ])) None
    & info [] ~docv:"CIRCUIT" ~doc:"lna or mixer.")

let fig_cmd =
  let doc = "Reproduce Figure 2 (lna) or Figure 3 (mixer): error vs samples." in
  Cmd.v (Cmd.info "fig" ~doc)
    Term.(
      const (fun seed n_test quick name -> run_figures ~seed ~n_test ~quick name)
      $ seed_t $ n_test_t $ quick_t $ circuit_pos)

let tab_cmd =
  let doc = "Reproduce Table 1 (lna) or Table 2 (mixer): error and cost." in
  Cmd.v (Cmd.info "tab" ~doc)
    Term.(
      const (fun seed n_test quick name -> run_table ~seed ~n_test ~quick name)
      $ seed_t $ n_test_t $ quick_t $ circuit_pos)

let poi_t =
  Arg.(value & opt string "NF" & info [ "poi" ] ~doc:"Performance of interest.")

let n_train_t =
  Arg.(value & opt int 15 & info [ "n-train" ] ~doc:"Training samples/state.")

let ablation_cmd =
  let doc = "Ablate C-BMF's design choices on one circuit/PoI." in
  Cmd.v (Cmd.info "ablation" ~doc)
    Term.(
      const (fun seed n_test name poi n -> run_ablation ~seed ~n_test name poi n)
      $ seed_t $ n_test_t $ circuit_pos $ poi_t $ n_train_t)

let budget_cmd =
  let doc =
    "Active-learning accuracy-vs-samples curve (synthetic ground truth)."
  in
  let k_t = Arg.(value & opt int 32 & info [ "k" ] ~doc:"States K.") in
  let m_t = Arg.(value & opt int 21 & info [ "m" ] ~doc:"Dictionary size M.") in
  let d_t = Arg.(value & opt int 10 & info [ "d" ] ~doc:"Device variables.") in
  let active_t =
    Arg.(value & opt int 4 & info [ "active" ] ~doc:"Planted support size.")
  in
  let rho_t =
    Arg.(value & opt float 0.9 & info [ "rho" ] ~doc:"Cross-state correlation.")
  in
  let noise_t =
    Arg.(value & opt float 0.1 & info [ "noise" ] ~doc:"Observation noise sd.")
  in
  let pool_t =
    Arg.(value & opt int 24 & info [ "pool" ] ~doc:"Candidates per round.")
  in
  Cmd.v (Cmd.info "budget" ~doc)
    Term.(
      const (fun seed k m d active rho noise pool_size ->
          run_budget ~k ~m ~d ~active ~rho ~noise ~seed ~pool_size)
      $ seed_t $ k_t $ m_t $ d_t $ active_t $ rho_t $ noise_t $ pool_t)

let all_cmd =
  let doc = "Run every table and figure (the full evaluation)." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const (fun seed n_test quick ->
          List.iter
            (fun name ->
              run_table ~seed ~n_test ~quick name;
              run_figures ~seed ~n_test ~quick name)
            [ "lna"; "mixer" ])
      $ seed_t $ n_test_t $ quick_t)

let main =
  let doc = "Reproduction of C-BMF (Wang & Li, DAC 2016)." in
  Cmd.group (Cmd.info "cbmf_repro" ~doc)
    [ fig_cmd; tab_cmd; ablation_cmd; budget_cmd; all_cmd ]

let () = exit (Cmd.eval main)
