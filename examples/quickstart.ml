(* Quickstart: fit a C-BMF performance model for a small synthetic
   tunable circuit and compare it against the S-OMP baseline.

     dune exec examples/quickstart.exe

   The synthetic "circuit" has K = 16 knob states whose performance
   depends sparsely on a 100-dimensional variation vector, with
   coefficients drifting smoothly across states — exactly the structure
   C-BMF's prior encodes. *)

open Cbmf_linalg
open Cbmf_model

let n_states = 16

let dim = 100

let n_train_per_state = 6

let n_test_per_state = 100

(* Ground truth: performance = 5 + Σ c_j(state)·x_j over a small support. *)
let true_coefficient ~state = function
  | 0 -> 5.0 (* intercept, on the constant basis *)
  | 8 -> 2.0 *. (1.0 +. (0.2 *. sin (0.3 *. float_of_int state)))
  | 33 -> -1.2
  | 71 -> 0.8 +. (0.05 *. float_of_int state)
  | _ -> 0.0

let dict = Cbmf_basis.Dictionary.linear dim

let simulate rng ~state ~n =
  let xs = Mat.init n dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng) in
  let design = Cbmf_basis.Dictionary.design_matrix dict xs in
  let response =
    Array.init n (fun i ->
        let row = Mat.row design i in
        let acc = ref (0.05 *. Cbmf_prob.Rng.gaussian rng) in
        for j = 0 to Mat.dim design |> snd |> pred do
          let c = true_coefficient ~state j in
          if c <> 0.0 then acc := !acc +. (c *. row.(j))
        done;
        !acc)
  in
  (design, response)

let dataset rng ~n =
  let per_state = Array.init n_states (fun state -> simulate rng ~state ~n) in
  Dataset.create
    ~design:(Array.map fst per_state)
    ~response:(Array.map snd per_state)

let () =
  let rng = Cbmf_prob.Rng.create 2016 in
  let train = dataset rng ~n:n_train_per_state in
  let test = dataset rng ~n:n_test_per_state in
  Printf.printf "Training: %d states x %d samples, %d basis functions\n\n"
    n_states n_train_per_state train.Dataset.n_basis;

  (* --- C-BMF (Algorithm 1): init by modified S-OMP + CV, refine by EM. --- *)
  let model = Cbmf_core.Cbmf.fit train in
  let info = model.Cbmf_core.Cbmf.info in
  Printf.printf "C-BMF: r0 = %.3f, theta = %d, EM iterations = %d, %.2f s\n"
    info.Cbmf_core.Cbmf.r0 info.Cbmf_core.Cbmf.theta
    info.Cbmf_core.Cbmf.em_iterations info.Cbmf_core.Cbmf.fit_seconds;
  Printf.printf "C-BMF test error:  %.3f%%\n"
    (100.0 *. Cbmf_core.Cbmf.test_error model test);

  (* --- S-OMP baseline at the same budget. --- *)
  let somp, theta =
    Somp.fit_cv train ~n_folds:4 ~candidate_terms:[| 2; 3; 4; 6; 8 |]
  in
  Printf.printf "S-OMP test error:  %.3f%%  (theta = %d)\n"
    (100.0 *. Metrics.coeffs_error_pooled ~coeffs:somp.Somp.coeffs test)
    theta;

  (* --- Inspect a fitted coefficient against the ground truth.  The
     design column 8 is the basis function x7 (column 0 is the
     constant); [true_coefficient] indexes design columns. --- *)
  Printf.printf "\nCoefficient on design column 8 across states (true vs C-BMF):\n";
  List.iter
    (fun state ->
      Printf.printf "  state %2d: true %+.3f   fitted %+.3f\n" state
        (true_coefficient ~state 8)
        (Mat.get model.Cbmf_core.Cbmf.coeffs state 8))
    [ 0; 5; 10; 15 ];

  (* --- Persist and serve: snapshot round-trips bit-identically. ---
     The serving model keeps only the active terms and the posterior
     factors; [Snapshot.save]/[load] reproduce it exactly, so a model
     fitted once can be served anywhere without refitting. *)
  let serving = Cbmf_serve.Model.of_fit ~dict (Cbmf_core.Cbmf.fitted_view model) in
  let path = Filename.temp_file "cbmf_quickstart" ".snap" in
  Cbmf_serve.Snapshot.save ~path serving;
  let reloaded = Cbmf_serve.Snapshot.load ~path in
  Sys.remove path;
  assert (Cbmf_serve.Model.equal reloaded serving);
  Printf.printf
    "\nSnapshot: %d active terms saved, reloaded bit-identically\n"
    (Cbmf_serve.Model.n_active serving);
  Printf.printf "Served predictions at a fresh point (mean ± sd):\n";
  let x = Array.init dim (fun _ -> Cbmf_prob.Rng.gaussian rng) in
  List.iter
    (fun state ->
      let mean, sd = Cbmf_serve.Model.predict reloaded ~state x in
      let mean', sd' = Cbmf_serve.Model.predict serving ~state x in
      assert (
        Int64.equal (Int64.bits_of_float mean) (Int64.bits_of_float mean')
        && Int64.equal (Int64.bits_of_float sd) (Int64.bits_of_float sd'));
      Printf.printf "  state %2d: %+.3f ± %.3f\n" state mean sd)
    [ 0; 5; 10; 15 ]
